#include "common/trace.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero {

namespace {

/** Stable small integer for the calling thread's trace lane. */
std::uint64_t
currentTid()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t tid = next.fetch_add(1);
    return tid;
}

} // namespace

TraceCollector &
TraceCollector::global()
{
    static TraceCollector instance;
    return instance;
}

void
TraceCollector::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

std::int64_t
TraceCollector::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceCollector::add(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceCollector::instant(const std::string &name,
                        const std::string &category,
                        const std::string &args_json)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.argsJson = args_json;
    event.startUs = nowUs();
    event.durationUs = -1;
    event.tid = currentTid();
    add(std::move(event));
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
TraceCollector::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent &e : events_) {
        os << (first ? "" : ",") << "\n  {\"name\": \""
           << jsonEscape(e.name) << "\", \"cat\": \""
           << jsonEscape(e.category.empty() ? "mapzero" : e.category)
           << "\", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << e.startUs;
        if (e.durationUs >= 0)
            os << ", \"ph\": \"X\", \"dur\": " << e.durationUs;
        else
            os << ", \"ph\": \"i\", \"s\": \"t\"";
        if (!e.argsJson.empty())
            os << ", \"args\": " << e.argsJson;
        os << "}";
        first = false;
    }
    os << "\n]}\n";
    return os.str();
}

void
TraceCollector::writeTo(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace output file " + path);
    os << toJson();
    if (!os)
        fatal("failed writing trace to " + path);
}

TraceSpan::TraceSpan(std::string name, std::string category,
                     std::string args_json)
{
    TraceCollector &collector = TraceCollector::global();
    if (!collector.enabled())
        return;
    active_ = true;
    startUs_ = collector.nowUs();
    name_ = std::move(name);
    category_ = std::move(category);
    argsJson_ = std::move(args_json);
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    TraceCollector &collector = TraceCollector::global();
    TraceEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.argsJson = std::move(argsJson_);
    event.startUs = startUs_;
    event.durationUs = collector.nowUs() - startUs_;
    event.tid = currentTid();
    collector.add(std::move(event));
}

void
TraceSpan::setArgs(std::string args_json)
{
    if (active_)
        argsJson_ = std::move(args_json);
}

void
writeRunReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open metrics report file " + path);
    os << "{\n\"metrics\": " << metrics().snapshotJson()
       << ", \"traceEventCount\": "
       << TraceCollector::global().eventCount() << "\n}\n";
    if (!os)
        fatal("failed writing metrics report to " + path);
}

namespace {

std::mutex g_report_path_mutex;
std::string g_report_path;
bool g_report_hooks_installed = false;
/** Reentry guard: a failing flush must not recurse via the hook. */
std::atomic<bool> g_report_flushing{false};
FatalHook g_report_previous_hook = nullptr;

} // namespace

void
crashFlushRunReport() noexcept
{
    if (g_report_flushing.exchange(true))
        return;
    try {
        std::string path;
        {
            std::lock_guard<std::mutex> lock(g_report_path_mutex);
            path = g_report_path;
        }
        if (!path.empty())
            writeRunReport(path);
    } catch (...) {
        // Crash-time best effort; the run is already going down.
    }
    g_report_flushing.store(false);
}

void
setRunReportOutputPath(std::string path)
{
    bool install_hooks = false;
    {
        std::lock_guard<std::mutex> lock(g_report_path_mutex);
        g_report_path = std::move(path);
        if (!g_report_path.empty() && !g_report_hooks_installed) {
            g_report_hooks_installed = true;
            install_hooks = true;
        }
    }
    if (install_hooks) {
        // Construct the singletons the flush reads before registering
        // the handler: statics die in reverse construction order, so a
        // registry first constructed later would already be destroyed
        // when the atexit hook snapshots it.
        metrics();
        TraceCollector::global();
        // Same contract as Journal::setOutputPath: flush on orderly
        // exit and from fatal()/panic(), chaining whatever hook was
        // installed first so both subsystems flush in either order.
        std::atexit(+[] { crashFlushRunReport(); });
        g_report_previous_hook = setFatalHook(+[]() noexcept {
            crashFlushRunReport();
            if (g_report_previous_hook != nullptr)
                g_report_previous_hook();
        });
    }
}

std::string
runReportOutputPath()
{
    std::lock_guard<std::mutex> lock(g_report_path_mutex);
    return g_report_path;
}

} // namespace mapzero
