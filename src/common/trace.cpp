#include "common/trace.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero {

namespace {

/** Stable small integer for the calling thread's trace lane. */
std::uint64_t
currentTid()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t tid = next.fetch_add(1);
    return tid;
}

} // namespace

TraceCollector &
TraceCollector::global()
{
    static TraceCollector instance;
    return instance;
}

void
TraceCollector::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

std::int64_t
TraceCollector::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceCollector::add(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceCollector::instant(const std::string &name,
                        const std::string &category,
                        const std::string &args_json)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.argsJson = args_json;
    event.startUs = nowUs();
    event.durationUs = -1;
    event.tid = currentTid();
    add(std::move(event));
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
TraceCollector::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent &e : events_) {
        os << (first ? "" : ",") << "\n  {\"name\": \""
           << jsonEscape(e.name) << "\", \"cat\": \""
           << jsonEscape(e.category.empty() ? "mapzero" : e.category)
           << "\", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << e.startUs;
        if (e.durationUs >= 0)
            os << ", \"ph\": \"X\", \"dur\": " << e.durationUs;
        else
            os << ", \"ph\": \"i\", \"s\": \"t\"";
        if (!e.argsJson.empty())
            os << ", \"args\": " << e.argsJson;
        os << "}";
        first = false;
    }
    os << "\n]}\n";
    return os.str();
}

void
TraceCollector::writeTo(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace output file " + path);
    os << toJson();
    if (!os)
        fatal("failed writing trace to " + path);
}

TraceSpan::TraceSpan(std::string name, std::string category,
                     std::string args_json)
{
    TraceCollector &collector = TraceCollector::global();
    if (!collector.enabled())
        return;
    active_ = true;
    startUs_ = collector.nowUs();
    name_ = std::move(name);
    category_ = std::move(category);
    argsJson_ = std::move(args_json);
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    TraceCollector &collector = TraceCollector::global();
    TraceEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.argsJson = std::move(argsJson_);
    event.startUs = startUs_;
    event.durationUs = collector.nowUs() - startUs_;
    event.tid = currentTid();
    collector.add(std::move(event));
}

void
TraceSpan::setArgs(std::string args_json)
{
    if (active_)
        argsJson_ = std::move(args_json);
}

// ---------------------------------------------------------------------------
// Request-scoped tracing
// ---------------------------------------------------------------------------

const char *const kTraceCountNames[kTraceCountSlots] = {
    "mcts_waves",      "mcts_leaves",     "mcts_sims",
    "tt_eval_hits",    "tt_step_hits",    "eval_cache_hits",
    "eval_cache_misses", "eval_batches",  "route_calls",
    "route_us",
};

namespace {

/** Per-thread binding state; TraceBinding saves/restores all four. */
thread_local TraceContext *t_context = nullptr;
thread_local int t_baseDepth = 0;
thread_local TraceScope *t_innerScope = nullptr;
thread_local int t_openScopes = 0;

/** Fold nonzero counter slots into @p args_json (a JSON object or ""). */
std::string
mergeCountsIntoArgs(std::string args_json,
                    const std::int64_t (&counts)[kTraceCountSlots])
{
    std::ostringstream extra;
    bool any = false;
    for (int i = 0; i < kTraceCountSlots; ++i) {
        if (counts[i] == 0)
            continue;
        extra << (any ? ", " : "") << "\"" << kTraceCountNames[i]
              << "\": " << counts[i];
        any = true;
    }
    if (!any)
        return args_json;
    if (args_json.empty())
        return "{" + extra.str() + "}";
    // args_json is a pre-rendered object: splice before its closing '}'.
    std::size_t close = args_json.rfind('}');
    if (close == std::string::npos)
        return args_json;
    bool empty_object = args_json.find_first_not_of(" \t", 1) == close;
    return args_json.substr(0, close) + (empty_object ? "" : ", ") +
           extra.str() + "}";
}

/**
 * Pre-create the bounded set of per-stage histograms once per process.
 * The first record against a fresh registry name pays a map insert
 * under the registry mutex; done lazily from addStage that cost lands
 * in the gap *between* two stages of the first request and eats into
 * its timeline coverage, so it is paid up front at context creation
 * (i.e. at SUBMIT) instead.
 */
void
warmStageHistograms()
{
    static std::once_flag once;
    std::call_once(once, [] {
        for (const char *stage : {"queue_wait", "disk_cache", "compile",
                                  "persist", "render"})
            metrics().histogram(
                std::string("compile.stage_seconds.") + stage);
    });
}

} // namespace

TraceContext::TraceContext(std::string trace_id)
    : traceId_(std::move(trace_id))
{
    warmStageHistograms();
}

std::int64_t
TraceContext::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceContext::addStage(const std::string &name, std::int64_t start_us,
                       std::int64_t duration_us, int depth,
                       const std::string &args_json)
{
    if (depth == 0)
        metrics()
            .histogram("compile.stage_seconds." + name)
            .record(static_cast<double>(duration_us) / 1e6);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stages_.size() >= kMaxStages) {
        ++dropped_;
        return;
    }
    TraceStage stage;
    stage.name = name;
    stage.argsJson = args_json;
    stage.startUs = start_us;
    stage.durationUs = duration_us;
    stage.tid = currentTid();
    stage.depth = depth;
    stages_.push_back(std::move(stage));
}

void
TraceContext::setPending(std::string name, std::int64_t start_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pendingName_ = std::move(name);
    pendingStartUs_ = start_us;
    hasPending_ = true;
}

void
TraceContext::closePendingAt(std::int64_t end_us)
{
    std::string name;
    std::int64_t start = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!hasPending_)
            return;
        name = std::move(pendingName_);
        start = pendingStartUs_;
        hasPending_ = false;
    }
    addStage(name, start, std::max<std::int64_t>(0, end_us - start), 0);
}

std::size_t
TraceContext::stageCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stages_.size();
}

std::size_t
TraceContext::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::vector<TraceStage>
TraceContext::stages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stages_;
}

std::string
TraceContext::timelineJson() const
{
    const std::int64_t now_us = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceStage> stages = stages_;
    if (hasPending_) {
        // An armed-but-unclosed pending stage (job still queued, or a
        // compile that died before its first scope) renders as running
        // until this snapshot's clock.
        TraceStage open;
        open.name = pendingName_;
        open.startUs = pendingStartUs_;
        open.durationUs =
            std::max<std::int64_t>(0, now_us - pendingStartUs_);
        open.tid = currentTid();
        open.depth = 0;
        stages.push_back(std::move(open));
    }
    std::int64_t total_us = now_us;
    // The timeline should cover the request even if the clock is read
    // before the last stage's end has settled.
    std::int64_t covered_us = 0;
    std::string dominant;
    std::int64_t dominant_us = 0;
    std::vector<std::pair<std::string, std::int64_t>> top_level;
    for (const TraceStage &s : stages) {
        total_us = std::max(total_us, s.startUs + s.durationUs);
        if (s.depth != 0)
            continue;
        covered_us += s.durationUs;
        bool found = false;
        for (auto &entry : top_level) {
            if (entry.first == s.name) {
                entry.second += s.durationUs;
                found = true;
                break;
            }
        }
        if (!found)
            top_level.emplace_back(s.name, s.durationUs);
    }
    for (const auto &entry : top_level) {
        if (entry.second > dominant_us) {
            dominant_us = entry.second;
            dominant = entry.first;
        }
    }
    double coverage =
        total_us > 0
            ? std::min(1.0, static_cast<double>(covered_us) /
                                static_cast<double>(total_us))
            : 1.0;
    std::ostringstream os;
    os << "{\"trace_id\": \"" << jsonEscape(traceId_)
       << "\", \"total_us\": " << total_us
       << ", \"total_ms\": " << jsonNumber(total_us / 1e3)
       << ", \"coverage\": " << jsonNumber(coverage)
       << ", \"dominant_stage\": \"" << jsonEscape(dominant)
       << "\", \"dropped\": " << dropped_ << ", \"stages\": [";
    bool first = true;
    for (const TraceStage &s : stages) {
        os << (first ? "" : ",") << "\n  {\"name\": \""
           << jsonEscape(s.name) << "\", \"start_us\": " << s.startUs
           << ", \"dur_us\": " << s.durationUs
           << ", \"depth\": " << s.depth << ", \"tid\": " << s.tid;
        if (!s.argsJson.empty())
            os << ", \"args\": " << s.argsJson;
        os << "}";
        first = false;
    }
    os << "\n]}";
    return os.str();
}

TraceStageSummary
TraceContext::summarizeStages() const
{
    TraceStageSummary summary;
    std::lock_guard<std::mutex> lock(mutex_);
    double dominant_ms = 0.0;
    const auto fold = [&summary](const std::string &name, double ms) {
        for (auto &entry : summary.stageMs) {
            if (entry.first == name) {
                entry.second += ms;
                return;
            }
        }
        summary.stageMs.emplace_back(name, ms);
    };
    for (const TraceStage &s : stages_) {
        if (s.depth != 0)
            continue;
        fold(s.name, static_cast<double>(s.durationUs) / 1e3);
    }
    if (hasPending_)
        fold(pendingName_,
             static_cast<double>(
                 std::max<std::int64_t>(0, nowUs() - pendingStartUs_)) /
                 1e3);
    for (const auto &entry : summary.stageMs) {
        if (entry.second > dominant_ms) {
            dominant_ms = entry.second;
            summary.dominantStage = entry.first;
        }
    }
    return summary;
}

TraceBinding::TraceBinding(TraceContext *context, int base_depth)
    : prevContext_(t_context), prevBaseDepth_(t_baseDepth),
      prevInnerScope_(t_innerScope), prevOpenScopes_(t_openScopes)
{
    t_context = context;
    t_baseDepth = base_depth;
    t_innerScope = nullptr;
    t_openScopes = 0;
}

TraceBinding::~TraceBinding()
{
    t_context = prevContext_;
    t_baseDepth = prevBaseDepth_;
    t_innerScope = static_cast<TraceScope *>(prevInnerScope_);
    t_openScopes = prevOpenScopes_;
}

TraceScope::TraceScope(std::string name, std::string args_json)
{
    if (t_context == nullptr)
        return;
    context_ = t_context;
    parent_ = t_innerScope;
    depth_ = t_baseDepth + t_openScopes;
    startUs_ = context_->nowUs();
    // A top-level scope closes any armed pending stage with its own
    // start time: the previous stage ends exactly where this one
    // begins, so the boundary carries no unattributed time.
    if (depth_ == 0)
        context_->closePendingAt(startUs_);
    name_ = std::move(name);
    argsJson_ = std::move(args_json);
    t_innerScope = this;
    ++t_openScopes;
}

TraceScope::~TraceScope()
{
    if (context_ == nullptr)
        return;
    std::int64_t end_us = context_->nowUs();
    context_->addStage(name_, startUs_, end_us - startUs_, depth_,
                       mergeCountsIntoArgs(std::move(argsJson_), counts_));
    t_innerScope = parent_;
    --t_openScopes;
    if (parent_ != nullptr) {
        for (int i = 0; i < kTraceCountSlots; ++i)
            parent_->counts_[i] += counts_[i];
    }
}

void
traceCountAdd(TraceCount count, std::int64_t delta)
{
    TraceScope *scope = t_innerScope;
    if (scope == nullptr)
        return;
    scope->counts_[static_cast<int>(count)] += delta;
}

bool
traceCountActive()
{
    return t_innerScope != nullptr;
}

void
writeRunReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open metrics report file " + path);
    os << "{\n\"metrics\": " << metrics().snapshotJson()
       << ", \"traceEventCount\": "
       << TraceCollector::global().eventCount() << "\n}\n";
    if (!os)
        fatal("failed writing metrics report to " + path);
}

namespace {

std::mutex g_report_path_mutex;
std::string g_report_path;
bool g_report_hooks_installed = false;
/** Reentry guard: a failing flush must not recurse via the hook. */
std::atomic<bool> g_report_flushing{false};
FatalHook g_report_previous_hook = nullptr;

} // namespace

void
crashFlushRunReport() noexcept
{
    if (g_report_flushing.exchange(true))
        return;
    try {
        std::string path;
        {
            std::lock_guard<std::mutex> lock(g_report_path_mutex);
            path = g_report_path;
        }
        if (!path.empty())
            writeRunReport(path);
    } catch (...) {
        // Crash-time best effort; the run is already going down.
    }
    g_report_flushing.store(false);
}

void
setRunReportOutputPath(std::string path)
{
    bool install_hooks = false;
    {
        std::lock_guard<std::mutex> lock(g_report_path_mutex);
        g_report_path = std::move(path);
        if (!g_report_path.empty() && !g_report_hooks_installed) {
            g_report_hooks_installed = true;
            install_hooks = true;
        }
    }
    if (install_hooks) {
        // Construct the singletons the flush reads before registering
        // the handler: statics die in reverse construction order, so a
        // registry first constructed later would already be destroyed
        // when the atexit hook snapshots it.
        metrics();
        TraceCollector::global();
        // Same contract as Journal::setOutputPath: flush on orderly
        // exit and from fatal()/panic(), chaining whatever hook was
        // installed first so both subsystems flush in either order.
        std::atexit(+[] { crashFlushRunReport(); });
        g_report_previous_hook = setFatalHook(+[]() noexcept {
            crashFlushRunReport();
            if (g_report_previous_hook != nullptr)
                g_report_previous_hook();
        });
    }
}

std::string
runReportOutputPath()
{
    std::lock_guard<std::mutex> lock(g_report_path_mutex);
    return g_report_path;
}

} // namespace mapzero
