/**
 * @file
 * Wall-clock timing and per-run time budgets.
 *
 * Every compiler in the evaluation obeys a time limit (the paper caps runs
 * at 8 hours); Deadline gives the mappers a uniform way to poll the budget.
 */

#ifndef MAPZERO_COMMON_TIMER_HPP
#define MAPZERO_COMMON_TIMER_HPP

#include <chrono>

namespace mapzero {

/** Monotonic stopwatch, started at construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction/reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction/reset. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A time budget mappers can poll cheaply.
 *
 * A non-positive budget means "unlimited".
 */
class Deadline
{
  public:
    /** Budget of @p seconds from now; <= 0 disables the deadline. */
    explicit Deadline(double seconds = 0.0)
        : budgetSeconds_(seconds)
    {}

    /** True when a finite budget is configured and exhausted. */
    bool
    expired() const
    {
        return budgetSeconds_ > 0.0 && timer_.seconds() >= budgetSeconds_;
    }

    /** Seconds remaining (infinity when unlimited). */
    double remaining() const;

    /** Seconds consumed so far. */
    double elapsed() const { return timer_.seconds(); }

    /** Configured budget (<= 0 means unlimited). */
    double budget() const { return budgetSeconds_; }

  private:
    Timer timer_;
    double budgetSeconds_;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_TIMER_HPP
