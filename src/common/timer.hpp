/**
 * @file
 * Wall-clock timing and per-run time budgets.
 *
 * Every compiler in the evaluation obeys a time limit (the paper caps runs
 * at 8 hours); Deadline gives the mappers a uniform way to poll the budget.
 */

#ifndef MAPZERO_COMMON_TIMER_HPP
#define MAPZERO_COMMON_TIMER_HPP

#include <atomic>
#include <chrono>

namespace mapzero {

/** Monotonic stopwatch, started at construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction/reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction/reset. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A time budget mappers can poll cheaply.
 *
 * A non-positive budget means "unlimited". A Deadline may additionally
 * carry a cancellation flag (an externally owned atomic that must
 * outlive the Deadline): once the flag is set, expired() is true and
 * remaining() is 0 regardless of the clock. Every search loop in the
 * repository already polls its Deadline, so this one pointer is how
 * asynchronous cancellation (mapzerod's CANCEL request, drain
 * timeouts) reaches the innermost backtracking/MCTS loops without any
 * engine changes.
 */
class Deadline
{
  public:
    /** Budget of @p seconds from now; <= 0 disables the deadline. */
    explicit Deadline(double seconds = 0.0)
        : budgetSeconds_(seconds)
    {}

    /** Same budget, plus a cancellation flag (nullptr = none). */
    Deadline(double seconds, const std::atomic<bool> *cancel)
        : budgetSeconds_(seconds), cancel_(cancel)
    {}

    /** True when cancelled, or when a finite budget is exhausted. */
    bool
    expired() const
    {
        if (cancelled())
            return true;
        return budgetSeconds_ > 0.0 && timer_.seconds() >= budgetSeconds_;
    }

    /** True when a cancellation flag is attached and set. */
    bool
    cancelled() const
    {
        return cancel_ != nullptr &&
               cancel_->load(std::memory_order_relaxed);
    }

    /** Seconds remaining (infinity when unlimited, 0 when cancelled). */
    double remaining() const;

    /** Seconds consumed so far. */
    double elapsed() const { return timer_.seconds(); }

    /** Configured budget (<= 0 means unlimited). */
    double budget() const { return budgetSeconds_; }

    /** The attached cancellation flag (nullptr when none). */
    const std::atomic<bool> *cancelFlag() const { return cancel_; }

  private:
    Timer timer_;
    double budgetSeconds_;
    const std::atomic<bool> *cancel_ = nullptr;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_TIMER_HPP
