/**
 * @file
 * The search flight recorder: a bounded, thread-safe journal of typed
 * structured events, written out as JSONL.
 *
 * Metrics (common/metrics.hpp) aggregate - they can say *that* 31 of 32
 * restarts failed, but not *which* DFG node stalled each of them or
 * which PE was congested. The journal keeps the per-event evidence:
 * search call sites emit one record per compile attempt, MCTS move, or
 * training episode, and `mapzero_cli report` reconstructs post-mortems
 * from the file offline (core/diagnostics.hpp).
 *
 * Cost model:
 *  - Disabled (the default), the journal costs one relaxed atomic load
 *    per call site. Call sites MUST guard record construction with
 *    `if (journal().enabled())` so the hot path allocates nothing.
 *  - Enabled, each record renders once into a per-thread staging buffer
 *    (one uncontended mutex) and batches of kFlushBatch records move
 *    into the central ring through the single merge path. The ring is
 *    bounded: when full, the *oldest* records are dropped (a flight
 *    recorder keeps the newest evidence) and dropped() counts them.
 *
 * Crash safety: when an output path is set, the journal is flushed to
 * it at process exit and from inside fatal()/panic() before the
 * exception is thrown, so the record of a dying run survives it.
 *
 * Record shape: one JSON object per line with a "type" discriminator
 * plus "seq" (global order), "ts_us" (microseconds since journal
 * construction), and "tid" (small per-thread id), e.g.
 *
 *   {"type":"compile.attempt","ii":3,"restart":7,"outcome":"fail",
 *    "fail_node":"mul7",...,"seq":42,"ts_us":1234,"tid":2}
 *
 * Naming convention for types: "<subsystem>.<event>" lower_snake_case,
 * mirroring the metrics names ("compile.attempt", "mcts.move",
 * "trainer.episode").
 */

#ifndef MAPZERO_COMMON_JOURNAL_HPP
#define MAPZERO_COMMON_JOURNAL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mapzero {

/**
 * One structured record under construction. Fields render eagerly into
 * the line buffer, so a record is a single string append stream - no
 * field tree is retained.
 */
class JournalRecord
{
  public:
    /** @param type the "<subsystem>.<event>" discriminator. */
    explicit JournalRecord(std::string_view type);

    /** Append a field. Keys must be unique within one record. */
    JournalRecord &field(std::string_view key, bool value);
    JournalRecord &field(std::string_view key, double value);
    JournalRecord &field(std::string_view key, std::string_view value);
    JournalRecord &field(std::string_view key, const char *value);

    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                               !std::is_same_v<T, bool>, int> = 0>
    JournalRecord &
    field(std::string_view key, T value)
    {
        return intField(key, static_cast<std::int64_t>(value));
    }

    /** Append @p json (a pre-rendered array/object) verbatim. */
    JournalRecord &rawField(std::string_view key, std::string_view json);

  private:
    friend class Journal;

    JournalRecord &intField(std::string_view key, std::int64_t value);
    void appendKey(std::string_view key);

    std::string body_;
};

/** Process-wide flight recorder; use the journal() shorthand. */
class Journal
{
  public:
    /** Records per merge from a thread buffer into the central ring. */
    static constexpr std::size_t kFlushBatch = 64;
    /** Default central ring capacity (records). */
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    static Journal &global();

    Journal() = default;
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Master switch (off by default). Call sites must check this
     *  before building a JournalRecord. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool enabled);

    /** Resize the central ring (drops oldest if shrinking below fill). */
    void setCapacity(std::size_t records);
    std::size_t capacity() const;

    /** Record one event (no-op while disabled). Thread-safe. */
    void emit(JournalRecord record);

    /** Total records emitted (including ones later dropped). */
    std::int64_t emitted() const;
    /** Records dropped from the ring (oldest-first) since clear(). */
    std::int64_t dropped() const;

    /** Retained records in seq order, oldest first. Flushes first. */
    std::vector<std::string> lines();

    /** Number of retained records. Flushes first. */
    std::size_t recordCount();

    /** Write the retained records as JSONL; fatal() on I/O failure. */
    void writeTo(const std::string &path);

    /**
     * Install @p path as the crash-flush target: the journal is
     * best-effort flushed there at process exit and from inside
     * fatal()/panic(), so a run that dies mid-search still leaves its
     * flight record behind. An empty path uninstalls.
     */
    void setOutputPath(std::string path);
    std::string outputPath() const;

    /** Drop all records and reset counters (tests). */
    void clear();

    /** The crash-flush entry point (idempotent, never throws). */
    void crashFlush() noexcept;

  private:
    struct ThreadBuffer {
        std::mutex mutex;
        std::vector<std::pair<std::uint64_t, std::string>> entries;
    };

    /** Microseconds since the journal's construction. */
    std::int64_t nowUs() const;

    ThreadBuffer &threadBuffer();
    void mergeBuffer(ThreadBuffer &buffer);
    void mergeLocked(
        std::vector<std::pair<std::uint64_t, std::string>> entries);
    void retireBuffer(const std::shared_ptr<ThreadBuffer> &buffer);
    bool tryWrite(const std::string &path) noexcept;

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::int64_t> dropped_{0};

    /** Guards the central ring. */
    mutable std::mutex centralMutex_;
    std::vector<std::pair<std::uint64_t, std::string>> central_;
    std::size_t capacity_ = kDefaultCapacity;

    /** Guards the registry of live thread buffers. */
    mutable std::mutex registryMutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;

    mutable std::mutex pathMutex_;
    std::string outputPath_;
    bool exitHookInstalled_ = false;
    /** seq_ value as of the last successful write (skip no-op flushes). */
    std::atomic<std::uint64_t> lastWriteSeq_{0};
    std::atomic<bool> flushing_{false};

    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/** Shorthand used by instrumented call sites. */
inline Journal &
journal()
{
    return Journal::global();
}

} // namespace mapzero

#endif // MAPZERO_COMMON_JOURNAL_HPP
