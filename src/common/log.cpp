#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace mapzero {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

/**
 * Apply MAPZERO_LOG_LEVEL once, at the first threshold query. An
 * explicit setLogLevel() before any logging wins over the environment;
 * unknown values are ignored (keeping the default rather than failing
 * a run over a typo'd variable).
 */
void
applyEnvLevelOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *value = std::getenv("MAPZERO_LOG_LEVEL");
        if (value == nullptr || *value == '\0')
            return;
        if (std::strcmp(value, "debug") == 0)
            globalLevel.store(LogLevel::Debug);
        else if (std::strcmp(value, "info") == 0)
            globalLevel.store(LogLevel::Info);
        else if (std::strcmp(value, "warn") == 0)
            globalLevel.store(LogLevel::Warn);
        else if (std::strcmp(value, "error") == 0)
            globalLevel.store(LogLevel::Error);
        else if (std::strcmp(value, "off") == 0)
            globalLevel.store(LogLevel::Off);
    });
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off:   return "off";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    applyEnvLevelOnce();
    globalLevel.store(level);
}

LogLevel
logLevel()
{
    applyEnvLevelOnce();
    return globalLevel.load();
}

void
logMessage(LogLevel level, const std::string &message)
{
    applyEnvLevelOnce();
    if (static_cast<int>(level) < static_cast<int>(globalLevel.load()))
        return;
    std::ostream &os =
        level >= LogLevel::Warn ? std::cerr : std::cout;
    os << "[mapzero:" << levelName(level) << "] " << message << "\n";
}

void
inform(const std::string &message)
{
    logMessage(LogLevel::Info, message);
}

void
warn(const std::string &message)
{
    logMessage(LogLevel::Warn, message);
}

namespace {

std::atomic<FatalHook> fatalHook{nullptr};

void
runFatalHook()
{
    const FatalHook hook = fatalHook.load();
    if (hook != nullptr)
        hook();
}

} // namespace

FatalHook
setFatalHook(FatalHook hook)
{
    return fatalHook.exchange(hook);
}

void
fatal(const std::string &message)
{
    logMessage(LogLevel::Error, message);
    runFatalHook();
    throw std::runtime_error("mapzero fatal: " + message);
}

void
panic(const std::string &message)
{
    logMessage(LogLevel::Error, "PANIC: " + message);
    runFatalHook();
    throw std::logic_error("mapzero panic: " + message);
}

} // namespace mapzero
