#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <stdexcept>

namespace mapzero {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off:   return "off";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level);
}

LogLevel
logLevel()
{
    return globalLevel.load();
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(globalLevel.load()))
        return;
    std::ostream &os =
        level >= LogLevel::Warn ? std::cerr : std::cout;
    os << "[mapzero:" << levelName(level) << "] " << message << "\n";
}

void
inform(const std::string &message)
{
    logMessage(LogLevel::Info, message);
}

void
warn(const std::string &message)
{
    logMessage(LogLevel::Warn, message);
}

void
fatal(const std::string &message)
{
    logMessage(LogLevel::Error, message);
    throw std::runtime_error("mapzero fatal: " + message);
}

void
panic(const std::string &message)
{
    logMessage(LogLevel::Error, "PANIC: " + message);
    throw std::logic_error("mapzero panic: " + message);
}

} // namespace mapzero
