/**
 * @file
 * The parallel execution subsystem: a fixed-size thread pool with task
 * futures, a parallel-for helper, and process-wide job-count resolution.
 *
 * MapZero's cost is dominated by thousands of small network evaluations
 * inside MCTS and by self-play episode generation, both of which shard
 * cleanly across workers. Everything stochastic that runs on a worker
 * draws from a per-worker Rng stream derived deterministically from a
 * root seed (Rng::deriveSeed), so results are reproducible for a fixed
 * seed regardless of scheduling order.
 *
 * Job-count resolution (resolveJobs): an explicit argument wins, then a
 * process-wide default installed by the CLI's --jobs flag
 * (setDefaultJobs), then the MAPZERO_NUM_THREADS environment variable,
 * then 1 - so the library defaults to today's single-threaded behavior
 * unless parallelism is asked for. A count of 0 anywhere means "one per
 * hardware thread".
 */

#ifndef MAPZERO_COMMON_PARALLEL_HPP
#define MAPZERO_COMMON_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/timer.hpp"

namespace mapzero {

/**
 * Number of workers to use given an explicit request of @p requested
 * (0 = auto). Falls back to setDefaultJobs(), then MAPZERO_NUM_THREADS,
 * then 1; "auto" at any level resolves to the hardware thread count.
 * The result is always >= 1.
 */
std::size_t resolveJobs(std::size_t requested = 0);

/** Install the process-wide default job count (0 = hardware threads,
 *  negative semantics do not exist: pass what the user typed). */
void setDefaultJobs(std::size_t jobs);

/** The installed default (0 when never set). */
std::size_t defaultJobs();

/** Forget any installed default, as if setDefaultJobs was never
 *  called (tests; distinct from setDefaultJobs(0) = "hardware"). */
void clearDefaultJobs();

/**
 * Fixed-size pool of worker threads executing submitted tasks FIFO.
 *
 * Tasks are arbitrary callables; submit() returns a std::future that
 * carries the result or any exception the task threw. The destructor
 * drains the queue (every submitted task runs) and joins the workers.
 * Pool activity is published to the metrics registry:
 * "parallel.tasks" (counter), "parallel.queue_wait_seconds" and
 * "parallel.task_run_seconds" (histograms), plus the live-pressure
 * gauges "threadpool.queue_depth" and "threadpool.active_workers"
 * that the telemetry endpoint scrapes mid-run (process-wide
 * last-writer-wins when several pools coexist).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (resolveJobs(threads) decides 0). */
    explicit ThreadPool(std::size_t threads);

    /** Drains pending tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t size() const { return workers_.size(); }

    /** Queue @p fn; the future resolves with its result or exception. */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Index in [0, size()) of the pool worker running the caller, or -1
     * when called from a thread outside this pool. Useful for
     * per-worker scratch space.
     */
    int currentWorker() const;

  private:
    struct Task {
        std::function<void()> run;
        /** Started at enqueue; read at dequeue for the wait metric. */
        Timer queued;
    };

    void enqueue(std::function<void()> fn);
    void workerLoop(std::size_t index);

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Task> queue_;
    bool stop_ = false;
    /** Workers currently running a task (feeds the activity gauge). */
    std::atomic<int> active_{0};
    std::vector<std::thread> workers_;
};

/**
 * Run body(i) for every i in [0, count), distributing across @p pool.
 *
 * Blocks until every iteration finished. The first exception thrown by
 * any iteration is rethrown on the calling thread (remaining iterations
 * still run to completion). With count <= 1 or an empty/1-wide pool the
 * loop runs inline on the caller.
 */
void parallelFor(ThreadPool &pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace mapzero

#endif // MAPZERO_COMMON_PARALLEL_HPP
