/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All stochastic components (SA, MCTS rollouts, weight init, random DFG
 * generation) draw from an explicitly seeded Rng so every experiment in the
 * benchmark harness is exactly reproducible from its seed.
 */

#ifndef MAPZERO_COMMON_RNG_HPP
#define MAPZERO_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace mapzero {

/**
 * Complete serializable state of an Rng: the xoshiro256** words plus the
 * Box-Muller spare, so a restored generator continues the exact stream
 * (checkpoint/resume must be bit-identical, not merely "seeded alike").
 */
struct RngState {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool hasSpareNormal = false;
    double spareNormal = 0.0;
};

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Small, fast, and fully owned by this repo so results do not depend on the
 * standard library's unspecified distribution implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /**
     * Decorrelated child seed for worker/episode @p stream of @p root,
     * via splitmix64 mixing. Parallel code derives one stream per unit
     * of work (never per OS thread), so a run's random choices are a
     * pure function of (root seed, work index) no matter how the work
     * is scheduled across workers.
     */
    static std::uint64_t deriveSeed(std::uint64_t root,
                                    std::uint64_t stream);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with mean/stddev. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /**
     * Gamma(alpha, 1) via Marsaglia-Tsang squeeze; alpha < 1 uses the
     * boost gamma(alpha) = gamma(alpha + 1) * u^(1/alpha). Exact
     * marginals even for small shapes (Dirichlet noise uses
     * alpha = 0.3).
     */
    double gamma(double alpha);

    /** Current stream state (for checkpointing). */
    RngState state() const;

    /** Resume the exact stream captured by state(). */
    void setState(const RngState &state);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Pick an index according to non-negative weights. When the total
     * weight is non-positive or non-finite (all-zero priorities,
     * denormal underflow, NaN poisoning) the draw falls back to a
     * uniform index instead of silently returning the last entry.
     * Panics only on an empty weight vector.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fork a child generator with a decorrelated seed stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_RNG_HPP
