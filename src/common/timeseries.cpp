#include "common/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "common/procstat.hpp"

namespace mapzero {

TimeSeriesRecorder &
TimeSeriesRecorder::global()
{
    static TimeSeriesRecorder instance;
    return instance;
}

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry &registry)
    : registry_(&registry)
{}

TimeSeriesRecorder::~TimeSeriesRecorder()
{
    stop();
}

void
TimeSeriesRecorder::start(int period_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    periodMs_ = std::max(period_ms, 10);
    if (running_)
        return;
    running_ = true;
    stopRequested_ = false;
    sampler_ = std::thread([this] { samplerLoop(); });
}

void
TimeSeriesRecorder::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    wake_.notify_all();
    sampler_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
}

bool
TimeSeriesRecorder::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

int
TimeSeriesRecorder::periodMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return periodMs_;
}

void
TimeSeriesRecorder::setCapacity(std::size_t points)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = std::max<std::size_t>(points, 2);
}

std::size_t
TimeSeriesRecorder::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

std::int64_t
TimeSeriesRecorder::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ticks_;
}

void
TimeSeriesRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    series_.clear();
    ticks_ = 0;
}

void
TimeSeriesRecorder::append(Ring &ring, SeriesPoint point)
{
    // Shrink in place when setCapacity() went below the fill: drop the
    // oldest points, keeping time order.
    if (ring.points.size() > capacity_) {
        std::vector<SeriesPoint> kept = orderedPoints(ring);
        kept.erase(kept.begin(),
                   kept.begin() +
                       static_cast<std::ptrdiff_t>(kept.size() -
                                                   capacity_));
        ring.points = std::move(kept);
        ring.head = 0;
    }
    if (ring.points.size() < capacity_) {
        ring.points.push_back(point);
        return;
    }
    ring.points[ring.head] = point;
    ring.head = (ring.head + 1) % ring.points.size();
}

void
TimeSeriesRecorder::sampleNow()
{
    // Refresh the resource gauges first so the registry snapshot below
    // already carries this tick's proc.* values.
    if (registry_ == &MetricsRegistry::global())
        publishProcMetrics();

    const MetricsSnapshot snap = registry_->snapshot();
    const auto now = std::chrono::steady_clock::now();
    const std::int64_t t_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              epoch_)
            .count();

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, value] : snap.counters)
        append(series_[name],
               SeriesPoint{t_us, static_cast<double>(value)});
    for (const auto &[name, value] : snap.gauges)
        append(series_[name], SeriesPoint{t_us, value});
    for (const auto &[name, h] : snap.histograms) {
        append(series_[name + ".count"],
               SeriesPoint{t_us, static_cast<double>(h.count)});
        append(series_[name + ".sum"], SeriesPoint{t_us, h.sum});
    }
    ++ticks_;
}

void
TimeSeriesRecorder::samplerLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                           [this] { return stopRequested_; });
            if (stopRequested_)
                return;
        }
        sampleNow();
    }
}

std::vector<SeriesPoint>
TimeSeriesRecorder::orderedPoints(const Ring &ring) const
{
    std::vector<SeriesPoint> ordered;
    ordered.reserve(ring.points.size());
    for (std::size_t i = 0; i < ring.points.size(); ++i)
        ordered.push_back(
            ring.points[(ring.head + i) % ring.points.size()]);
    return ordered;
}

SeriesWindow
TimeSeriesRecorder::windowLocked(const std::string &name,
                                 const Ring &ring) const
{
    SeriesWindow window;
    window.name = name;
    window.points = orderedPoints(ring);
    if (window.points.empty())
        return window;
    window.last = window.points.back().value;
    window.min = window.max = window.points.front().value;
    for (const SeriesPoint &p : window.points) {
        window.min = std::min(window.min, p.value);
        window.max = std::max(window.max, p.value);
    }
    return window;
}

std::vector<SeriesWindow>
TimeSeriesRecorder::windows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SeriesWindow> result;
    result.reserve(series_.size());
    for (const auto &[name, ring] : series_)
        result.push_back(windowLocked(name, ring));
    return result;
}

SeriesWindow
TimeSeriesRecorder::window(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = series_.find(name);
    if (it == series_.end()) {
        SeriesWindow empty;
        empty.name = name;
        return empty;
    }
    return windowLocked(name, it->second);
}

std::string
TimeSeriesRecorder::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"period_ms\": " << periodMs_
       << ", \"capacity\": " << capacity_ << ", \"ticks\": " << ticks_
       << ", \"series\": {";
    bool first = true;
    for (const auto &[name, ring] : series_) {
        const SeriesWindow w = windowLocked(name, ring);
        os << (first ? "" : ",") << "\n  \"" << jsonEscape(name)
           << "\": {\"last\": " << jsonNumber(w.last)
           << ", \"min\": " << jsonNumber(w.min)
           << ", \"max\": " << jsonNumber(w.max) << ", \"points\": [";
        for (std::size_t i = 0; i < w.points.size(); ++i) {
            os << (i == 0 ? "" : ",") << "[" << w.points[i].tUs << ","
               << jsonNumber(w.points[i].value) << "]";
        }
        os << "]}";
        first = false;
    }
    os << "\n}}\n";
    return os.str();
}

} // namespace mapzero
