/**
 * @file
 * Background time-series recorder over the metrics registry.
 *
 * A single scrape of /metrics answers "what is the queue depth now";
 * operating a long compile needs "what has it been doing for the last
 * two minutes". The recorder runs one sampler thread that, every
 * period, refreshes the proc.* gauges (common/procstat.hpp) and copies
 * every counter, gauge, and histogram count/sum in the registry into a
 * fixed-capacity per-metric ring buffer. The retained window therefore
 * covers capacity * period seconds (default 256 * 250ms ~ one minute)
 * and memory stays bounded no matter how long the process lives.
 *
 * The snapshot API reports, per series, the ring's points plus the
 * last/min/max over the retained window - what a dashboard sparkline
 * or the /snapshot.json endpoint needs without post-processing.
 *
 * Cost model: one tick takes the registry mutex once for the snapshot
 * and appends one point per series; at the default period this is well
 * under the 1% overhead budget of DESIGN.md §13 even with hundreds of
 * live series. The sampler thread sleeps on a condition variable, so
 * stop() (and process exit) is immediate.
 */

#ifndef MAPZERO_COMMON_TIMESERIES_HPP
#define MAPZERO_COMMON_TIMESERIES_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace mapzero {

/** One recorded sample of one metric. */
struct SeriesPoint {
    /** Microseconds since the recorder's construction. */
    std::int64_t tUs = 0;
    double value = 0.0;
};

/** A series' retained window plus its summary (snapshot API). */
struct SeriesWindow {
    std::string name;
    /** Points in time order, oldest first (at most the ring capacity). */
    std::vector<SeriesPoint> points;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * The background sampler with per-metric ring buffers.
 *
 * Instantiable for tests (pass the registry to watch); production code
 * uses the process-wide instance via TimeSeriesRecorder::global(),
 * which watches the global registry.
 */
class TimeSeriesRecorder
{
  public:
    /** Default ring capacity, points per series. */
    static constexpr std::size_t kDefaultCapacity = 256;
    /** Default sampling period, milliseconds. */
    static constexpr int kDefaultPeriodMs = 250;

    /** The process-wide instance (watches the global registry). */
    static TimeSeriesRecorder &global();

    explicit TimeSeriesRecorder(
        MetricsRegistry &registry = MetricsRegistry::global());
    ~TimeSeriesRecorder();

    TimeSeriesRecorder(const TimeSeriesRecorder &) = delete;
    TimeSeriesRecorder &operator=(const TimeSeriesRecorder &) = delete;

    /**
     * Start the sampler thread at @p period_ms (clamped to >= 10ms).
     * Idempotent: a running recorder just adopts the new period at its
     * next tick.
     */
    void start(int period_ms = kDefaultPeriodMs);

    /** Stop and join the sampler thread (no-op when not running). */
    void stop();

    bool running() const;
    int periodMs() const;

    /**
     * Ring capacity per series; shrinking drops the oldest points of
     * every series at its next append.
     */
    void setCapacity(std::size_t points);
    std::size_t capacity() const;

    /**
     * Take one sample now, on the calling thread: refresh the proc.*
     * gauges, snapshot the registry, and append one point per metric
     * (histograms contribute "<name>.count" and "<name>.sum" series).
     * Thread-safe; this is exactly what the sampler thread does per
     * tick, exposed for tests and for forcing a fresh point before a
     * scrape.
     */
    void sampleNow();

    /** Series recorded so far (lexicographic name order). */
    std::vector<SeriesWindow> windows() const;

    /** One series' window; empty points when the name is unknown. */
    SeriesWindow window(const std::string &name) const;

    /** Total ticks taken (sampler thread + sampleNow calls). */
    std::int64_t ticks() const;

    /** Drop every ring (tests). */
    void clear();

    /**
     * The retained windows as JSON:
     * {"period_ms": P, "capacity": C, "ticks": N,
     *  "series": {name: {"last": .., "min": .., "max": ..,
     *                    "points": [[t_us, value], ...]}, ...}}
     */
    std::string snapshotJson() const;

  private:
    /** Fixed-capacity ring of points for one metric. */
    struct Ring {
        std::vector<SeriesPoint> points;
        /** Index of the oldest point once the ring wrapped. */
        std::size_t head = 0;
    };

    void append(Ring &ring, SeriesPoint point);
    void samplerLoop();
    std::vector<SeriesPoint> orderedPoints(const Ring &ring) const;
    SeriesWindow windowLocked(const std::string &name,
                              const Ring &ring) const;

    MetricsRegistry *registry_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::map<std::string, Ring> series_;
    std::size_t capacity_ = kDefaultCapacity;
    int periodMs_ = kDefaultPeriodMs;
    bool running_ = false;
    bool stopRequested_ = false;
    std::int64_t ticks_ = 0;
    std::thread sampler_;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_TIMESERIES_HPP
