/**
 * @file
 * GraphViz DOT import/export for DFGs, the interchange format CGRA
 * mapping tools conventionally use for extracted kernels.
 */

#ifndef MAPZERO_DFG_DOT_HPP
#define MAPZERO_DFG_DOT_HPP

#include <iosfwd>
#include <string>

#include "dfg/dfg.hpp"

namespace mapzero::dfg {

/** Serialize @p dfg as a DOT digraph (opcode labels, distance attrs). */
std::string toDot(const Dfg &dfg);

/** Write toDot() to a stream. */
void writeDot(const Dfg &dfg, std::ostream &os);

/**
 * Parse a DOT digraph produced by toDot() (or hand-written in the same
 * dialect): node lines `n3 [opcode=mul];`, edge lines
 * `n0 -> n3 [distance=1];`. fatal() on malformed input.
 */
Dfg fromDot(const std::string &text);

/** Read fromDot() from a stream. */
Dfg readDot(std::istream &is);

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_DOT_HPP
