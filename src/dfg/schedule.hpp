/**
 * @file
 * Scheduling analyses over a Dfg: topological order, minimum initiation
 * interval (ResMII / RecMII), and modulo scheduling of node time slices.
 *
 * The paper folds scheduling into placement ("in this paper, scheduling is
 * contained in placement"): every mapper first computes a modulo schedule
 * for the target II, then the mapping environment assigns nodes to PEs in
 * scheduled order. Time slices also feed the DFG feature vector
 * ((3) scheduled time slice, (4) scheduled modulo time slice).
 */

#ifndef MAPZERO_DFG_SCHEDULE_HPP
#define MAPZERO_DFG_SCHEDULE_HPP

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "dfg/dfg.hpp"

namespace mapzero::dfg {

/** Per-node schedule produced by moduloSchedule(). */
struct Schedule {
    /** Target initiation interval the schedule obeys. */
    std::int32_t ii = 1;
    /** Absolute time slice of each node (unit latency per op). */
    std::vector<std::int32_t> time;
    /** time[v] % ii, cached. */
    std::vector<std::int32_t> moduloTime;
    /** Topological placement order (ancestors first). */
    std::vector<NodeId> order;

    /** Count of nodes sharing modulo slice @p slot. */
    std::int32_t nodesInModuloSlot(std::int32_t slot) const;
    /** Total schedule length in cycles (max time + 1). */
    std::int32_t length() const;
};

/**
 * Topological order of the distance-0 subgraph, ties broken by node id.
 * fatal() when the subgraph has a cycle.
 */
std::vector<NodeId> topologicalOrder(const Dfg &dfg);

/**
 * Resource-constrained minimum II: enough PE slots for every op and
 * enough memory-capable slots for every load/store.
 *
 * @param num_pes total PEs per time slice
 * @param num_mem_pes PEs able to issue memory operations
 */
std::int32_t resMii(const Dfg &dfg, std::int32_t num_pes,
                    std::int32_t num_mem_pes);

/**
 * Recurrence-constrained minimum II: the smallest II such that no
 * dependency cycle requires more latency than II times its total
 * iteration distance. 1 when the graph has no loop-carried cycles.
 */
std::int32_t recMii(const Dfg &dfg);

/** max(resMii, recMii). */
std::int32_t minimumIi(const Dfg &dfg, std::int32_t num_pes,
                       std::int32_t num_mem_pes);

/**
 * Modulo schedule for a target @p ii.
 *
 * Times satisfy time[dst] >= time[src] + 1 - ii * distance for every
 * edge. Within each node's feasible [ASAP, ALAP] window the scheduler
 * balances modulo-slot populations (preferring late times so slack hugs
 * the consumer), and keeps the number of memory operations per modulo
 * slot under @p mem_capacity_per_slot when possible (the ADRES row bus
 * makes this a hard placement constraint; INT32_MAX disables it).
 * Returns nullopt when ii < RecMII (a positive cycle exists).
 */
std::optional<Schedule> moduloSchedule(
    const Dfg &dfg, std::int32_t ii,
    std::int32_t mem_capacity_per_slot =
        std::numeric_limits<std::int32_t>::max());

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_SCHEDULE_HPP
