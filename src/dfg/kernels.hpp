/**
 * @file
 * Synthetic benchmark-kernel DFG generators.
 *
 * The paper evaluates on loop kernels extracted by LLVM from Microbench,
 * ExPRESS, and Embench-IoT (Table 2). The extracted DFGs are not published,
 * so each generator here builds a DFG with the *exact* vertex and edge
 * counts of Table 2 and a structure faithful to the kernel's computation:
 * dot-product/MAC cores for the filter kernels, butterfly stages for the
 * DCT, compare-exchange networks for sort, branchy select chains for
 * Huffman, plus the unrolled-loop address-arithmetic chains LLVM emits.
 * Mapping difficulty depends only on graph structure and opcodes, which
 * this preserves (see DESIGN.md, substitution table).
 */

#ifndef MAPZERO_DFG_KERNELS_HPP
#define MAPZERO_DFG_KERNELS_HPP

#include <string>
#include <vector>

#include "dfg/dfg.hpp"

namespace mapzero::dfg {

/** Static description of one benchmark kernel. */
struct KernelInfo {
    std::string name;
    std::int32_t vertices;
    std::int32_t edges;
    /** True for the *_u kernels used in the scalability study (Fig. 13). */
    bool unrolled;
};

/** Table 2, in alphabetical order. */
const std::vector<KernelInfo> &kernelTable();

/** Names of every kernel in kernelTable(). */
std::vector<std::string> kernelNames();

/**
 * Build the named kernel's DFG. The result is validated and guaranteed to
 * match the vertex/edge counts of kernelTable(). fatal() on unknown names.
 */
Dfg buildKernel(const std::string &name);

/** Convenience: the non-unrolled kernels (the paper's Fig. 8-11 set). */
std::vector<std::string> coreKernelNames();

/** Convenience: the unrolled kernels (Fig. 13 scalability set). */
std::vector<std::string> unrolledKernelNames();

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_KERNELS_HPP
