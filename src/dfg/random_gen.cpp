#include "dfg/random_gen.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace mapzero::dfg {

Dfg
randomDfg(const RandomDfgParams &params, Rng &rng)
{
    if (params.nodes < 2)
        fatal("randomDfg requires at least 2 nodes");

    Dfg dfg;
    dfg.setName("random");

    // Arithmetic/logic opcode palette for interior nodes.
    static const Opcode palette[] = {
        Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
        Opcode::Or,  Opcode::Xor, Opcode::Shl, Opcode::Cmp,
    };

    const std::int32_t n = params.nodes;
    for (std::int32_t i = 0; i < n; ++i) {
        Opcode op;
        if (rng.bernoulli(params.memFraction)) {
            // Loads early in the graph, stores late.
            op = i < n / 2 ? Opcode::Load : Opcode::Store;
        } else {
            op = palette[rng.uniformInt(std::size(palette))];
        }
        dfg.addNode(op);
    }

    // Edges only go forward (node ids double as a topological order), so
    // the distance-0 subgraph is acyclic by construction.
    std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
    const auto want_edges = static_cast<std::int32_t>(
        params.fanout * static_cast<double>(n - 1));
    std::int32_t added = 0;
    // Backbone: every node except the first gets one predecessor so the
    // graph is connected.
    for (std::int32_t v = 1; v < n; ++v) {
        const auto u =
            static_cast<NodeId>(rng.uniformInt(0, v - 1));
        dfg.addEdge(u, v);
        ++indeg[static_cast<std::size_t>(v)];
        ++added;
    }
    std::int32_t attempts = 0;
    while (added < want_edges && attempts < 20 * want_edges) {
        ++attempts;
        const auto u = static_cast<NodeId>(rng.uniformInt(0, n - 2));
        const auto v = static_cast<NodeId>(rng.uniformInt(u + 1, n - 1));
        if (indeg[static_cast<std::size_t>(v)] >= params.maxInDegree)
            continue;
        dfg.addEdge(u, v);
        ++indeg[static_cast<std::size_t>(v)];
        ++added;
    }

    // Loop-carried accumulators.
    for (NodeId v = 0; v < n; ++v) {
        if (opClass(dfg.node(v).opcode) != OpClass::Memory &&
            rng.bernoulli(params.selfCycleProb)) {
            dfg.addEdge(v, v, 1);
        }
    }

    dfg.validate();
    return dfg;
}

double
dfgDifficulty(const Dfg &dfg)
{
    const auto n = static_cast<double>(dfg.nodeCount());
    const auto e = static_cast<double>(dfg.edgeCount());
    const auto mem = static_cast<double>(dfg.memoryOpCount());
    double max_fanout = 0.0;
    for (NodeId v = 0; v < dfg.nodeCount(); ++v)
        max_fanout =
            std::max(max_fanout, static_cast<double>(dfg.outDegree(v)));
    return n + 2.0 * (e / std::max(n, 1.0)) + mem + 0.5 * max_fanout;
}

std::vector<Dfg>
curriculum(std::int32_t count, std::int32_t min_nodes,
           std::int32_t max_nodes, Rng &rng)
{
    if (min_nodes < 2 || max_nodes < min_nodes)
        fatal("curriculum: invalid node-count range");
    std::vector<Dfg> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int32_t i = 0; i < count; ++i) {
        RandomDfgParams p;
        p.nodes =
            static_cast<std::int32_t>(rng.uniformInt(min_nodes, max_nodes));
        p.fanout = rng.uniformReal(1.1, 1.8);
        p.memFraction = rng.uniformReal(0.1, 0.3);
        p.selfCycleProb = rng.uniformReal(0.0, 0.2);
        Dfg d = randomDfg(p, rng);
        d.setName(cat("random", i, "_n", p.nodes));
        out.push_back(std::move(d));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Dfg &a, const Dfg &b) {
        return dfgDifficulty(a) < dfgDifficulty(b);
    });
    return out;
}

} // namespace mapzero::dfg
