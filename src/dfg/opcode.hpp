/**
 * @file
 * DFG operation codes and their functional classification.
 *
 * The classification (arithmetic / logical / memory) is what the CGRA PE
 * capability model keys on: the paper encodes "whether this PE can perform
 * logical, arithmetic, and memory access operations" as three booleans of
 * the hardware feature vector (§3.2.2).
 */

#ifndef MAPZERO_DFG_OPCODE_HPP
#define MAPZERO_DFG_OPCODE_HPP

#include <cstdint>
#include <string>

namespace mapzero::dfg {

/** Operation performed by a DFG node. */
enum class Opcode : std::uint8_t {
    Const,   ///< materialize an immediate
    Add,
    Sub,
    Mul,
    Div,
    Mac,     ///< fused multiply-accumulate
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Not,
    Cmp,     ///< comparison producing a predicate
    Select,  ///< predicated select (cmov)
    Load,
    Store,
    Phi,     ///< loop-header merge
    Route,   ///< pure data movement (inserted by node balancing)
};

/** Functional class a PE must support to execute an opcode. */
enum class OpClass : std::uint8_t { Arithmetic, Logic, Memory };

/** Functional class of @p op. */
OpClass opClass(Opcode op);

/** Lower-case mnemonic, e.g. "add". */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; fatal() on unknown names. */
Opcode parseOpcode(const std::string &name);

/** Small integer code used in feature vectors. */
inline std::int32_t
opcodeIndex(Opcode op)
{
    return static_cast<std::int32_t>(op);
}

/** Number of distinct opcodes. */
constexpr std::int32_t kOpcodeCount =
    static_cast<std::int32_t>(Opcode::Route) + 1;

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_OPCODE_HPP
