#include "dfg/dfg.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/log.hpp"

namespace mapzero::dfg {

NodeId
Dfg::addNode(Opcode opcode, std::string name)
{
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(DfgNode{opcode, std::move(name)});
    inEdges_.emplace_back();
    outEdges_.emplace_back();
    return id;
}

void
Dfg::addEdge(NodeId src, NodeId dst, std::int32_t distance)
{
    if (src < 0 || src >= nodeCount() || dst < 0 || dst >= nodeCount())
        panic(cat("edge (", src, " -> ", dst, ") out of range"));
    if (distance < 0)
        panic("edge distance must be non-negative");
    if (src == dst && distance == 0)
        panic(cat("distance-0 self edge on node ", src));
    const auto idx = static_cast<std::int32_t>(edges_.size());
    edges_.push_back(DfgEdge{src, dst, distance});
    outEdges_[static_cast<std::size_t>(src)].push_back(idx);
    inEdges_[static_cast<std::size_t>(dst)].push_back(idx);
}

std::int32_t
Dfg::nodeCount() const
{
    return static_cast<std::int32_t>(nodes_.size());
}

std::int32_t
Dfg::edgeCount() const
{
    return static_cast<std::int32_t>(edges_.size());
}

const DfgNode &
Dfg::node(NodeId id) const
{
    return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<std::int32_t> &
Dfg::inEdges(NodeId id) const
{
    return inEdges_[static_cast<std::size_t>(id)];
}

const std::vector<std::int32_t> &
Dfg::outEdges(NodeId id) const
{
    return outEdges_[static_cast<std::size_t>(id)];
}

std::int32_t
Dfg::inDegree(NodeId id) const
{
    return static_cast<std::int32_t>(inEdges(id).size());
}

std::int32_t
Dfg::outDegree(NodeId id) const
{
    return static_cast<std::int32_t>(outEdges(id).size());
}

std::vector<NodeId>
Dfg::predecessors(NodeId id) const
{
    std::vector<NodeId> out;
    for (std::int32_t e : inEdges(id)) {
        const DfgEdge &edge = edges_[static_cast<std::size_t>(e)];
        if (edge.distance == 0 &&
            std::find(out.begin(), out.end(), edge.src) == out.end()) {
            out.push_back(edge.src);
        }
    }
    return out;
}

std::vector<NodeId>
Dfg::successors(NodeId id) const
{
    std::vector<NodeId> out;
    for (std::int32_t e : outEdges(id)) {
        const DfgEdge &edge = edges_[static_cast<std::size_t>(e)];
        if (edge.distance == 0 &&
            std::find(out.begin(), out.end(), edge.dst) == out.end()) {
            out.push_back(edge.dst);
        }
    }
    return out;
}

bool
Dfg::hasSelfCycle(NodeId id) const
{
    for (std::int32_t e : outEdges(id))
        if (edges_[static_cast<std::size_t>(e)].dst == id)
            return true;
    return false;
}

std::int32_t
Dfg::memoryOpCount() const
{
    std::int32_t n = 0;
    for (const auto &node : nodes_)
        if (opClass(node.opcode) == OpClass::Memory)
            ++n;
    return n;
}

bool
Dfg::isDistanceZeroAcyclic() const
{
    // Kahn's algorithm over distance-0 edges.
    std::vector<std::int32_t> indeg(nodes_.size(), 0);
    for (const auto &e : edges_)
        if (e.distance == 0)
            ++indeg[static_cast<std::size_t>(e.dst)];

    std::vector<NodeId> queue;
    for (NodeId v = 0; v < nodeCount(); ++v)
        if (indeg[static_cast<std::size_t>(v)] == 0)
            queue.push_back(v);

    std::int32_t seen = 0;
    while (!queue.empty()) {
        const NodeId v = queue.back();
        queue.pop_back();
        ++seen;
        for (std::int32_t ei : outEdges(v)) {
            const DfgEdge &e = edges_[static_cast<std::size_t>(ei)];
            if (e.distance != 0)
                continue;
            if (--indeg[static_cast<std::size_t>(e.dst)] == 0)
                queue.push_back(e.dst);
        }
    }
    return seen == nodeCount();
}

void
Dfg::validate() const
{
    for (const auto &e : edges_) {
        if (e.src < 0 || e.src >= nodeCount() || e.dst < 0 ||
            e.dst >= nodeCount()) {
            fatal(cat("dfg '", name_, "': edge endpoint out of range"));
        }
        if (e.distance < 0)
            fatal(cat("dfg '", name_, "': negative edge distance"));
        if (e.src == e.dst && e.distance == 0)
            fatal(cat("dfg '", name_, "': distance-0 self edge on node ",
                      e.src));
    }
    if (!isDistanceZeroAcyclic())
        fatal(cat("dfg '", name_,
                  "': distance-0 dependency cycle (unschedulable)"));
}

std::string
Dfg::canonicalBytes() const
{
    std::string bytes;
    const auto append_i32 = [&bytes](std::int32_t v) {
        bytes.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    append_i32(nodeCount());
    for (const DfgNode &node : nodes_)
        append_i32(static_cast<std::int32_t>(node.opcode));
    for (const DfgEdge &e : edges_) {
        append_i32(e.src);
        append_i32(e.dst);
        append_i32(e.distance);
    }
    return bytes;
}

} // namespace mapzero::dfg
