/**
 * @file
 * Random DFG generation for curriculum pre-training.
 *
 * The paper pre-trains the agent on "a random set of DFGs ... in the order
 * of ease to hard" with 3-30 nodes (§3.6.2, §4.2). The generator emits
 * layered DAGs with realistic opcode mixes, optional loop-carried
 * accumulators, and a difficulty score used to sort the curriculum.
 */

#ifndef MAPZERO_DFG_RANDOM_GEN_HPP
#define MAPZERO_DFG_RANDOM_GEN_HPP

#include <vector>

#include "common/rng.hpp"
#include "dfg/dfg.hpp"

namespace mapzero::dfg {

/** Knobs of the random generator. */
struct RandomDfgParams {
    /** Node count (>= 2). */
    std::int32_t nodes = 8;
    /** Average out-edges per non-sink node. */
    double fanout = 1.5;
    /** Probability that a node is a memory op. */
    double memFraction = 0.2;
    /** Probability of adding a distance-1 accumulator self edge. */
    double selfCycleProb = 0.1;
    /** Maximum fan-in per node (operand count bound). */
    std::int32_t maxInDegree = 3;
};

/** Generate one random DFG; always validates. */
Dfg randomDfg(const RandomDfgParams &params, Rng &rng);

/**
 * Difficulty proxy for curriculum ordering: larger graphs with denser
 * dependencies and more memory ops are harder to map.
 */
double dfgDifficulty(const Dfg &dfg);

/**
 * Curriculum of @p count random DFGs with node counts drawn from
 * [min_nodes, max_nodes], sorted easy to hard.
 */
std::vector<Dfg> curriculum(std::int32_t count, std::int32_t min_nodes,
                            std::int32_t max_nodes, Rng &rng);

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_RANDOM_GEN_HPP
