#include "dfg/kernels.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace mapzero::dfg {

namespace {

/**
 * Incremental DFG construction with the motifs the kernels share, plus a
 * finalization step that adds the address-arithmetic chains of unrolled /
 * strength-reduced loop control so the totals match Table 2 exactly.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(const std::string &name) { dfg_.setName(name); }

    NodeId
    node(Opcode op, const std::string &label = "")
    {
        return dfg_.addNode(op, label);
    }

    void
    edge(NodeId src, NodeId dst, std::int32_t distance = 0)
    {
        dfg_.addEdge(src, dst, distance);
    }

    /** @p k load nodes (addresses wired later by finalize feeds). */
    std::vector<NodeId>
    loads(std::int32_t k)
    {
        std::vector<NodeId> ids;
        for (std::int32_t i = 0; i < k; ++i) {
            const NodeId v = node(Opcode::Load, cat("ld", i));
            ids.push_back(v);
            loads_.push_back(v);
        }
        return ids;
    }

    /** @p k shared immediate/coefficient nodes. */
    std::vector<NodeId>
    consts(std::int32_t k)
    {
        std::vector<NodeId> ids;
        for (std::int32_t i = 0; i < k; ++i)
            ids.push_back(node(Opcode::Const, cat("c", i)));
        return ids;
    }

    /** One mul per element of @p a, coefficient from @p cs round-robin. */
    std::vector<NodeId>
    mulsWithCoeffs(const std::vector<NodeId> &a,
                   const std::vector<NodeId> &cs)
    {
        std::vector<NodeId> ids;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const NodeId m = node(Opcode::Mul);
            edge(a[i], m);
            edge(cs[i % cs.size()], m);
            ids.push_back(m);
        }
        return ids;
    }

    /** Balanced binary reduction; returns the root. k-1 nodes. */
    NodeId
    reduceTree(std::vector<NodeId> vals, Opcode op = Opcode::Add)
    {
        if (vals.empty())
            panic("reduceTree over empty set");
        while (vals.size() > 1) {
            std::vector<NodeId> next;
            for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
                const NodeId r = node(op);
                edge(vals[i], r);
                edge(vals[i + 1], r);
                next.push_back(r);
            }
            if (vals.size() % 2 == 1)
                next.push_back(vals.back());
            vals = std::move(next);
        }
        return vals[0];
    }

    /** Loop-carried accumulator: add with a distance-1 self edge. */
    NodeId
    accumulator(NodeId input)
    {
        const NodeId acc = node(Opcode::Add, "acc");
        edge(input, acc);
        edge(acc, acc, 1);
        return acc;
    }

    /** Store of @p value. */
    NodeId
    store(NodeId value)
    {
        const NodeId st = node(Opcode::Store);
        edge(value, st);
        return st;
    }

    /**
     * Dot-product/MAC loop body: taps loads x shared coefficients into a
     * reduction tree, accumulated across iterations and stored.
     * Nodes: 3*taps + n_coeffs + 1.  Edges: 4*taps + 1.
     */
    void
    dotProductCore(std::int32_t taps, std::int32_t n_coeffs)
    {
        const auto xs = loads(taps);
        const auto cs = consts(n_coeffs);
        const auto ms = mulsWithCoeffs(xs, cs);
        const NodeId sum = reduceTree(ms);
        store(accumulator(sum));
    }

    /**
     * Finalize: append @p num_chains address chains totalling
     * @p pad_nodes nodes (head Const, body Add), wire @p feed_edges
     * address edges from chain nodes to loads/stores round-robin, then
     * check the totals against Table 2.
     */
    Dfg
    finalize(std::int32_t target_v, std::int32_t target_e)
    {
        const std::int32_t pad_v = target_v - dfg_.nodeCount();
        const std::int32_t pad_e = target_e - dfg_.edgeCount();
        if (pad_v < 0 || pad_e < 0)
            panic(cat("kernel '", dfg_.name(), "' core too large: ",
                      dfg_.nodeCount(), "/", dfg_.edgeCount()));

        // Choose a chain count: at least enough that chain edges
        // (pad_v - chains) do not exceed pad_e, and keep chains short.
        std::int32_t chains = 0;
        if (pad_v > 0) {
            chains = std::max<std::int32_t>(1, pad_v - pad_e);
            while (pad_v / chains > 16)
                ++chains;
        }
        const std::int32_t feed_edges =
            pad_e - (pad_v > 0 ? pad_v - chains : 0);
        if (feed_edges < 0)
            panic(cat("kernel '", dfg_.name(),
                      "' padding infeasible: pad_v=", pad_v,
                      " pad_e=", pad_e));

        // Address chains: i, i+1, i+2, ... per unrolled lane.
        std::vector<NodeId> chain_nodes;
        for (std::int32_t c = 0; c < chains; ++c) {
            const std::int32_t len =
                pad_v / chains + (c < pad_v % chains ? 1 : 0);
            NodeId prev = -1;
            for (std::int32_t i = 0; i < len; ++i) {
                const NodeId v =
                    node(i == 0 ? Opcode::Const : Opcode::Add,
                         cat("idx", c, "_", i));
                if (prev >= 0)
                    edge(prev, v);
                chain_nodes.push_back(v);
                prev = v;
            }
        }

        // Address feeds into loads (what the chains compute). Stores
        // are deliberately not fed: they are scheduled late, and wiring
        // an early address node to a late consumer would manufacture
        // slack no real unrolled loop has.
        if (feed_edges > 0 && (chain_nodes.empty() || loads_.empty()))
            panic(cat("kernel '", dfg_.name(),
                      "' has no sources/targets for address feeds"));
        std::int32_t added = 0;
        for (std::int32_t round = 0; added < feed_edges; ++round) {
            for (std::size_t t = 0;
                 t < loads_.size() && added < feed_edges; ++t) {
                const std::size_t s =
                    (t + static_cast<std::size_t>(round)) %
                    chain_nodes.size();
                edge(chain_nodes[s], loads_[t]);
                ++added;
            }
        }

        if (dfg_.nodeCount() != target_v || dfg_.edgeCount() != target_e)
            panic(cat("kernel '", dfg_.name(), "' count mismatch: got ",
                      dfg_.nodeCount(), "/", dfg_.edgeCount(),
                      ", want ", target_v, "/", target_e));
        dfg_.validate();
        return std::move(dfg_);
    }

    const std::vector<NodeId> &loads() const { return loads_; }

  private:
    Dfg dfg_;
    std::vector<NodeId> loads_;
};

Dfg
buildSum()
{
    // Reduction of two streams into a loop-carried accumulator.
    KernelBuilder b("sum");
    const auto xs = b.loads(2);
    b.store(b.accumulator(b.reduceTree(xs)));
    return b.finalize(8, 9);
}

Dfg
buildAccumulate()
{
    KernelBuilder b("accumulate");
    b.dotProductCore(4, 1);
    return b.finalize(21, 25);
}

Dfg
buildMac()
{
    KernelBuilder b("mac");
    b.dotProductCore(2, 2);
    return b.finalize(12, 14);
}

Dfg
buildMac2()
{
    KernelBuilder b("mac2");
    b.dotProductCore(8, 2);
    return b.finalize(40, 46);
}

Dfg
buildMatmul()
{
    // Inner-product loop of a blocked matrix multiply.
    KernelBuilder b("matmul");
    b.dotProductCore(5, 2);
    return b.finalize(26, 28);
}

Dfg
buildConv2()
{
    // 2x2 window convolution, one coefficient per tap.
    KernelBuilder b("conv2");
    b.dotProductCore(4, 4);
    return b.finalize(18, 20);
}

Dfg
buildConv3()
{
    // Separable 3-wide convolution after LLVM node balancing.
    KernelBuilder b("conv3");
    b.dotProductCore(7, 4);
    return b.finalize(28, 31);
}

Dfg
buildMults1()
{
    KernelBuilder b("mults1");
    b.dotProductCore(7, 2);
    return b.finalize(34, 38);
}

Dfg
buildMults2()
{
    KernelBuilder b("mults2");
    b.dotProductCore(9, 3);
    return b.finalize(42, 48);
}

Dfg
buildCap()
{
    KernelBuilder b("cap");
    b.dotProductCore(8, 4);
    return b.finalize(42, 47);
}

Dfg
buildMulul()
{
    // Wide unsigned multiply decomposed into partial products.
    KernelBuilder b("mulul");
    b.dotProductCore(20, 8);
    return b.finalize(97, 108);
}

Dfg
buildArf()
{
    // Auto-regressive filter: 8 state loads each fanning out to two
    // multipliers, 4 shared coefficient banks, one reduction lattice.
    KernelBuilder b("arf");
    const auto xs = b.loads(8);
    const auto cs = b.consts(4);
    std::vector<NodeId> ms;
    for (std::int32_t i = 0; i < 16; ++i) {
        const NodeId m = b.node(Opcode::Mul);
        b.edge(xs[static_cast<std::size_t>(i / 2)], m);
        b.edge(cs[static_cast<std::size_t>(i % 4)], m);
        ms.push_back(m);
    }
    b.store(b.accumulator(b.reduceTree(ms)));
    return b.finalize(54, 86);
}

Dfg
buildH2v2()
{
    // JPEG h2v2 downsample: per block, average four pixels and store.
    KernelBuilder b("h2v2");
    for (std::int32_t blk = 0; blk < 7; ++blk) {
        const auto px = b.loads(4);
        const NodeId sum = b.reduceTree(px);
        const NodeId shr = b.node(Opcode::Shr, cat("avg", blk));
        b.edge(sum, shr);
        b.store(shr);
    }
    return b.finalize(68, 71);
}

Dfg
buildFilterU()
{
    // Unrolled 2-tap FIR, 25 lanes sharing 3 coefficients.
    KernelBuilder b("filter_u");
    const auto cs = b.consts(3);
    for (std::int32_t lane = 0; lane < 25; ++lane) {
        const auto xs = b.loads(2);
        std::vector<NodeId> ms;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const NodeId m = b.node(Opcode::Mul);
            b.edge(xs[i], m);
            b.edge(cs[(static_cast<std::size_t>(lane) + i) % cs.size()],
                   m);
            ms.push_back(m);
        }
        b.store(b.reduceTree(ms));
    }
    return b.finalize(180, 201);
}

Dfg
buildStencilU()
{
    // Unrolled 3-point stencil, 12 lanes sharing 5 coefficients.
    KernelBuilder b("stencil_u");
    const auto cs = b.consts(5);
    for (std::int32_t lane = 0; lane < 12; ++lane) {
        const auto xs = b.loads(3);
        std::vector<NodeId> ms;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const NodeId m = b.node(Opcode::Mul);
            b.edge(xs[i], m);
            b.edge(cs[(static_cast<std::size_t>(lane) + i) % cs.size()],
                   m);
            ms.push_back(m);
        }
        b.store(b.reduceTree(ms));
    }
    return b.finalize(141, 159);
}

Dfg
buildJpegdctU()
{
    // Unrolled 2-stage DCT butterfly network with coefficient multiplies.
    KernelBuilder b("jpegdct_u");
    const auto xs = b.loads(32);
    auto butterfly_stage = [&b](const std::vector<NodeId> &in) {
        std::vector<NodeId> out;
        for (std::size_t i = 0; i + 1 < in.size(); i += 2) {
            const NodeId s = b.node(Opcode::Add);
            const NodeId d = b.node(Opcode::Sub);
            b.edge(in[i], s);
            b.edge(in[i + 1], s);
            b.edge(in[i], d);
            b.edge(in[i + 1], d);
            out.push_back(s);
            out.push_back(d);
        }
        return out;
    };
    const auto s1 = butterfly_stage(xs);
    const auto s2 = butterfly_stage(s1);
    const auto cs = b.consts(8);
    for (std::size_t i = 0; i < 16; ++i) {
        const NodeId m = b.node(Opcode::Mul);
        b.edge(s2[i * 2], m);
        b.edge(cs[i % cs.size()], m);
        b.store(m);
    }
    return b.finalize(255, 295);
}

Dfg
buildSortU()
{
    // Unrolled compare-exchange network over 64 elements.
    KernelBuilder b("sort_u");
    const auto xs = b.loads(64);
    std::vector<NodeId> current = xs;
    std::vector<NodeId> results;
    for (std::int32_t ce = 0; ce < 60; ++ce) {
        const std::size_t i = static_cast<std::size_t>(ce) %
                              (current.size() - 1);
        const NodeId cmp = b.node(Opcode::Cmp);
        b.edge(current[i], cmp);
        b.edge(current[i + 1], cmp);
        const NodeId sel = b.node(Opcode::Select);
        b.edge(current[i], sel);
        b.edge(current[i + 1], sel);
        b.edge(cmp, sel);
        current[i] = sel;
        results.push_back(sel);
    }
    for (std::size_t i = 0; i < 60; ++i)
        b.store(results[i]);
    for (std::size_t i = 0; i < 4; ++i)
        b.store(xs[xs.size() - 1 - i]);
    return b.finalize(328, 400);
}

Dfg
buildHufU()
{
    // Unrolled Huffman encode step: branchy select/shift/or blocks.
    KernelBuilder b("huf_u");
    const auto cs = b.consts(8);
    for (std::int32_t blk = 0; blk < 64; ++blk) {
        const auto in = b.loads(2);
        const NodeId cmp = b.node(Opcode::Cmp);
        b.edge(in[0], cmp);
        b.edge(in[1], cmp);
        const NodeId sel = b.node(Opcode::Select);
        b.edge(in[0], sel);
        b.edge(in[1], sel);
        b.edge(cmp, sel);
        const NodeId shl = b.node(Opcode::Shl);
        b.edge(sel, shl);
        const NodeId orr = b.node(Opcode::Or);
        b.edge(shl, orr);
        b.edge(cs[static_cast<std::size_t>(blk) % cs.size()], orr);
        b.store(orr);
    }
    return b.finalize(592, 720);
}

} // namespace

const std::vector<KernelInfo> &
kernelTable()
{
    static const std::vector<KernelInfo> table = {
        {"accumulate", 21, 25, false},
        {"arf", 54, 86, false},
        {"cap", 42, 47, false},
        {"conv2", 18, 20, false},
        {"conv3", 28, 31, false},
        {"filter_u", 180, 201, true},
        {"huf_u", 592, 720, true},
        {"h2v2", 68, 71, false},
        {"jpegdct_u", 255, 295, true},
        {"mac", 12, 14, false},
        {"mac2", 40, 46, false},
        {"matmul", 26, 28, false},
        {"mults1", 34, 38, false},
        {"mults2", 42, 48, false},
        {"mulul", 97, 108, false},
        {"sort_u", 328, 400, true},
        {"stencil_u", 141, 159, true},
        {"sum", 8, 9, false},
    };
    return table;
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const auto &k : kernelTable())
        names.push_back(k.name);
    return names;
}

std::vector<std::string>
coreKernelNames()
{
    std::vector<std::string> names;
    for (const auto &k : kernelTable())
        if (!k.unrolled)
            names.push_back(k.name);
    return names;
}

std::vector<std::string>
unrolledKernelNames()
{
    std::vector<std::string> names;
    for (const auto &k : kernelTable())
        if (k.unrolled)
            names.push_back(k.name);
    return names;
}

Dfg
buildKernel(const std::string &name)
{
    if (name == "sum")        return buildSum();
    if (name == "accumulate") return buildAccumulate();
    if (name == "mac")        return buildMac();
    if (name == "mac2")       return buildMac2();
    if (name == "matmul")     return buildMatmul();
    if (name == "conv2")      return buildConv2();
    if (name == "conv3")      return buildConv3();
    if (name == "mults1")     return buildMults1();
    if (name == "mults2")     return buildMults2();
    if (name == "cap")        return buildCap();
    if (name == "mulul")      return buildMulul();
    if (name == "arf")        return buildArf();
    if (name == "h2v2")       return buildH2v2();
    if (name == "filter_u")   return buildFilterU();
    if (name == "stencil_u")  return buildStencilU();
    if (name == "jpegdct_u")  return buildJpegdctU();
    if (name == "sort_u")     return buildSortU();
    if (name == "huf_u")      return buildHufU();
    fatal("unknown benchmark kernel: " + name);
}

} // namespace mapzero::dfg
