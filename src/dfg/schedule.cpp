#include "dfg/schedule.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace mapzero::dfg {

std::int32_t
Schedule::nodesInModuloSlot(std::int32_t slot) const
{
    return static_cast<std::int32_t>(
        std::count(moduloTime.begin(), moduloTime.end(), slot));
}

std::int32_t
Schedule::length() const
{
    if (time.empty())
        return 0;
    return *std::max_element(time.begin(), time.end()) + 1;
}

std::vector<NodeId>
topologicalOrder(const Dfg &dfg)
{
    const std::int32_t n = dfg.nodeCount();
    std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
    for (const auto &e : dfg.edges())
        if (e.distance == 0)
            ++indeg[static_cast<std::size_t>(e.dst)];

    // Min-id-first frontier keeps the order deterministic.
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v)
        if (indeg[static_cast<std::size_t>(v)] == 0)
            frontier.push_back(v);

    std::vector<NodeId> order;
    order.reserve(static_cast<std::size_t>(n));
    while (!frontier.empty()) {
        const auto it = std::min_element(frontier.begin(), frontier.end());
        const NodeId v = *it;
        frontier.erase(it);
        order.push_back(v);
        for (std::int32_t ei : dfg.outEdges(v)) {
            const DfgEdge &e = dfg.edges()[static_cast<std::size_t>(ei)];
            if (e.distance != 0)
                continue;
            if (--indeg[static_cast<std::size_t>(e.dst)] == 0)
                frontier.push_back(e.dst);
        }
    }
    if (static_cast<std::int32_t>(order.size()) != n)
        fatal(cat("dfg '", dfg.name(),
                  "': cycle in distance-0 subgraph, no topological order"));
    return order;
}

std::int32_t
resMii(const Dfg &dfg, std::int32_t num_pes, std::int32_t num_mem_pes)
{
    if (num_pes <= 0)
        fatal("resMii: architecture has no PEs");
    const std::int32_t n = dfg.nodeCount();
    const std::int32_t mem = dfg.memoryOpCount();
    std::int32_t ii = (n + num_pes - 1) / num_pes;
    if (mem > 0) {
        if (num_mem_pes <= 0)
            fatal(cat("dfg '", dfg.name(), "' needs memory ops but the "
                      "architecture has no memory-capable PEs"));
        ii = std::max(ii, (mem + num_mem_pes - 1) / num_mem_pes);
    }
    return std::max(ii, 1);
}

namespace {

/**
 * Longest-path fixpoint for constraint graph with weights
 * (1 - ii * distance). Returns times, or nullopt on a positive cycle.
 */
std::optional<std::vector<std::int32_t>>
longestPathTimes(const Dfg &dfg, std::int32_t ii)
{
    const auto n = static_cast<std::size_t>(dfg.nodeCount());
    std::vector<std::int32_t> time(n, 0);
    // Bellman-Ford style relaxation; at most n rounds, else positive cycle.
    for (std::size_t round = 0; round <= n; ++round) {
        bool changed = false;
        for (const auto &e : dfg.edges()) {
            const std::int32_t w = 1 - ii * e.distance;
            const std::int32_t cand =
                time[static_cast<std::size_t>(e.src)] + w;
            auto &t = time[static_cast<std::size_t>(e.dst)];
            if (cand > t) {
                t = cand;
                changed = true;
            }
        }
        if (!changed) {
            // Normalize so the earliest node starts at slice 0.
            const std::int32_t lo =
                *std::min_element(time.begin(), time.end());
            for (auto &t : time)
                t -= lo;
            return time;
        }
    }
    return std::nullopt;
}

} // namespace

std::int32_t
recMii(const Dfg &dfg)
{
    // Smallest ii admitting a consistent schedule. II can never exceed
    // the total latency of the longest simple cycle <= node count + 1.
    const std::int32_t hi = dfg.nodeCount() + 1;
    for (std::int32_t ii = 1; ii <= hi; ++ii)
        if (longestPathTimes(dfg, ii).has_value())
            return ii;
    fatal(cat("dfg '", dfg.name(), "': no feasible II up to ", hi,
              " (malformed recurrence)"));
}

std::int32_t
minimumIi(const Dfg &dfg, std::int32_t num_pes, std::int32_t num_mem_pes)
{
    return std::max(resMii(dfg, num_pes, num_mem_pes), recMii(dfg));
}

namespace {

/**
 * Latest feasible times: backward min-relaxation with sinks pinned to
 * their ASAP times. Guaranteed >= ASAP elementwise (see the argument in
 * the unit tests); falls back to ASAP if relaxation fails to converge.
 */
std::vector<std::int32_t>
latestTimes(const Dfg &dfg, std::int32_t ii,
            const std::vector<std::int32_t> &asap)
{
    constexpr std::int32_t inf = std::numeric_limits<std::int32_t>::max();
    const auto n = static_cast<std::size_t>(dfg.nodeCount());
    std::vector<std::int32_t> alap(n, inf);
    // Sinks have no consumers, so they may slide a full modulo period
    // later; this lets the slot balancer move stores out of crowded
    // slices (critical under the ADRES row-bus capacity).
    for (NodeId v = 0; v < dfg.nodeCount(); ++v)
        if (dfg.outEdges(v).empty())
            alap[static_cast<std::size_t>(v)] =
                asap[static_cast<std::size_t>(v)] + ii - 1;

    for (std::size_t round = 0; round <= n; ++round) {
        bool changed = false;
        for (const auto &e : dfg.edges()) {
            if (e.src == e.dst)
                continue; // self recurrences never bound lateness
            const auto d = alap[static_cast<std::size_t>(e.dst)];
            if (d == inf)
                continue;
            const std::int32_t bound = d - 1 + ii * e.distance;
            auto &t = alap[static_cast<std::size_t>(e.src)];
            if (bound < t) {
                t = bound;
                changed = true;
            }
        }
        if (!changed)
            break;
        if (round == n)
            return asap; // no fixpoint; be conservative
    }
    for (std::size_t v = 0; v < n; ++v) {
        if (alap[v] == inf || alap[v] < asap[v])
            alap[v] = asap[v];
    }
    return alap;
}

} // namespace

std::optional<Schedule>
moduloSchedule(const Dfg &dfg, std::int32_t ii,
               std::int32_t mem_capacity_per_slot)
{
    if (ii < 1)
        fatal("moduloSchedule: ii must be >= 1");
    auto asap_opt = longestPathTimes(dfg, ii);
    if (!asap_opt)
        return std::nullopt;
    const std::vector<std::int32_t> asap = std::move(*asap_opt);
    const std::vector<std::int32_t> alap = latestTimes(dfg, ii, asap);

    // Greedy slot-balanced assignment in topological order: each node
    // picks a time in its feasible window [lo, hi] whose modulo slot is
    // least loaded, preferring late times (slack hugs the consumer, so
    // fewer routing holds are needed - single-output-register fabrics
    // cannot stall values for long).
    const auto order = topologicalOrder(dfg);
    std::vector<std::int32_t> time(asap.size(), -1);
    std::vector<std::int32_t> population(static_cast<std::size_t>(ii), 0);
    std::vector<std::int32_t> mem_population(
        static_cast<std::size_t>(ii), 0);
    for (NodeId v : order) {
        const auto vi = static_cast<std::size_t>(v);
        std::int32_t lo = asap[vi];
        std::int32_t hi = alap[vi];
        for (std::int32_t ei : dfg.inEdges(v)) {
            const DfgEdge &e = dfg.edges()[static_cast<std::size_t>(ei)];
            if (e.src == e.dst)
                continue;
            const std::int32_t src_time =
                time[static_cast<std::size_t>(e.src)];
            if (src_time >= 0)
                lo = std::max(lo, src_time + 1 - ii * e.distance);
        }
        for (std::int32_t ei : dfg.outEdges(v)) {
            const DfgEdge &e = dfg.edges()[static_cast<std::size_t>(ei)];
            if (e.src == e.dst || e.distance == 0)
                continue;
            // Back edge to an already-placed earlier node bounds v.
            const std::int32_t dst_time =
                time[static_cast<std::size_t>(e.dst)];
            if (dst_time >= 0)
                hi = std::min(hi, dst_time - 1 + ii * e.distance);
        }
        if (hi < lo)
            hi = lo; // windows are conservative; lo always feasible

        const bool is_mem =
            opClass(dfg.node(v).opcode) == OpClass::Memory;
        std::int32_t best_t = hi;
        // Rank candidates: (memory-capacity violation, population),
        // scanning at most one modulo period, latest first.
        auto rank = [&](std::int32_t t) {
            const auto slot =
                static_cast<std::size_t>(((t % ii) + ii) % ii);
            const std::int64_t violation =
                is_mem && mem_population[slot] >= mem_capacity_per_slot
                    ? 1
                    : 0;
            return violation * 1000000 +
                   static_cast<std::int64_t>(population[slot]);
        };
        std::int64_t best_rank = std::numeric_limits<std::int64_t>::max();
        for (std::int32_t t = hi;
             t >= lo && t > hi - ii; --t) {
            const std::int64_t r = rank(t);
            if (r < best_rank) {
                best_rank = r;
                best_t = t;
            }
        }
        const auto best_slot =
            static_cast<std::size_t>(((best_t % ii) + ii) % ii);
        time[vi] = best_t;
        ++population[best_slot];
        if (is_mem)
            ++mem_population[best_slot];
    }

    // Repair pass: the greedy assignment can strand late-pinned nodes
    // in slots that exceed the memory-issue capacity (and occasionally
    // overload a slot's total population). Migrate movable nodes out of
    // overloaded slots; each move respects every incident edge against
    // the *current* times, so consistency is preserved.
    if (ii > 1) {
        auto slot_of = [ii](std::int32_t t) {
            return static_cast<std::size_t>(((t % ii) + ii) % ii);
        };
        for (std::int32_t pass = 0; pass < 4; ++pass) {
            bool moved = false;
            for (NodeId v = 0; v < dfg.nodeCount(); ++v) {
                const auto vi2 = static_cast<std::size_t>(v);
                const bool is_mem =
                    opClass(dfg.node(v).opcode) == OpClass::Memory;
                const auto cur_slot = slot_of(time[vi2]);
                const bool mem_over = is_mem &&
                    mem_population[cur_slot] > mem_capacity_per_slot;
                if (!mem_over)
                    continue;

                // Tight window against current neighbor times.
                std::int32_t lo =
                    std::numeric_limits<std::int32_t>::min();
                std::int32_t hi =
                    std::numeric_limits<std::int32_t>::max();
                for (std::int32_t ei : dfg.inEdges(v)) {
                    const DfgEdge &e =
                        dfg.edges()[static_cast<std::size_t>(ei)];
                    if (e.src == e.dst)
                        continue;
                    lo = std::max(lo,
                                  time[static_cast<std::size_t>(e.src)] +
                                      1 - ii * e.distance);
                }
                for (std::int32_t ei : dfg.outEdges(v)) {
                    const DfgEdge &e =
                        dfg.edges()[static_cast<std::size_t>(ei)];
                    if (e.src == e.dst)
                        continue;
                    hi = std::min(hi,
                                  time[static_cast<std::size_t>(e.dst)] -
                                      1 + ii * e.distance);
                }
                if (lo == std::numeric_limits<std::int32_t>::min())
                    lo = std::max(0, time[vi2] - ii + 1);
                if (hi == std::numeric_limits<std::int32_t>::max())
                    hi = time[vi2] + ii - 1;
                if (hi < lo)
                    continue;

                for (std::int32_t t = hi; t >= lo && t > hi - ii; --t) {
                    const auto s = slot_of(t);
                    if (s == cur_slot)
                        continue;
                    if (mem_population[s] >= mem_capacity_per_slot)
                        continue;
                    --population[cur_slot];
                    --mem_population[cur_slot];
                    time[vi2] = t;
                    ++population[s];
                    ++mem_population[s];
                    moved = true;
                    break;
                }
            }
            if (!moved)
                break;
        }
    }

    // The greedy pass uses conservative windows; verify every edge
    // constraint and fall back to the always-consistent ASAP schedule
    // when the balanced assignment pinched a recurrence.
    bool consistent = true;
    for (const auto &e : dfg.edges()) {
        if (time[static_cast<std::size_t>(e.dst)] <
            time[static_cast<std::size_t>(e.src)] + 1 -
                ii * e.distance) {
            consistent = false;
            break;
        }
    }
    if (!consistent)
        time = asap;

    // Normalize so the earliest node starts at slice 0.
    const std::int32_t min_t =
        *std::min_element(time.begin(), time.end());
    for (auto &t : time)
        t -= min_t;

    Schedule s;
    s.ii = ii;
    s.time = std::move(time);
    s.moduloTime.reserve(s.time.size());
    for (std::int32_t t : s.time)
        s.moduloTime.push_back(t % ii);

    // Placement order: affinity-driven topological order. Among ready
    // nodes (all distance-0 predecessors ordered), prefer the one most
    // connected to what is already ordered, then the earliest-scheduled.
    // For DFGs made of many independent lanes (the unrolled kernels)
    // this emits one lane at a time, so a placer laying nodes down in
    // this order keeps producers and consumers adjacent - time-sorted
    // order would interleave all lanes and scatter them.
    {
        const std::int32_t n = dfg.nodeCount();
        std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
        for (const auto &e : dfg.edges())
            if (e.distance == 0)
                ++indeg[static_cast<std::size_t>(e.dst)];
        std::vector<bool> ordered(static_cast<std::size_t>(n), false);
        std::vector<std::int32_t> affinity(static_cast<std::size_t>(n),
                                           0);
        std::vector<NodeId> ready;
        for (NodeId v = 0; v < n; ++v)
            if (indeg[static_cast<std::size_t>(v)] == 0)
                ready.push_back(v);

        s.order.reserve(static_cast<std::size_t>(n));
        while (!ready.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < ready.size(); ++i) {
                const auto a = static_cast<std::size_t>(ready[i]);
                const auto b = static_cast<std::size_t>(ready[best]);
                if (affinity[a] != affinity[b]) {
                    if (affinity[a] > affinity[b])
                        best = i;
                } else if (s.time[a] != s.time[b]) {
                    if (s.time[a] < s.time[b])
                        best = i;
                } else if (ready[i] < ready[best]) {
                    best = i;
                }
            }
            const NodeId v = ready[best];
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(best));
            ordered[static_cast<std::size_t>(v)] = true;
            s.order.push_back(v);
            for (std::int32_t ei : dfg.outEdges(v)) {
                const DfgEdge &e =
                    dfg.edges()[static_cast<std::size_t>(ei)];
                ++affinity[static_cast<std::size_t>(e.dst)];
                if (e.distance == 0 &&
                    --indeg[static_cast<std::size_t>(e.dst)] == 0) {
                    ready.push_back(e.dst);
                }
            }
            for (std::int32_t ei : dfg.inEdges(v)) {
                const DfgEdge &e =
                    dfg.edges()[static_cast<std::size_t>(ei)];
                if (!ordered[static_cast<std::size_t>(e.src)])
                    ++affinity[static_cast<std::size_t>(e.src)];
            }
        }
        if (static_cast<std::int32_t>(s.order.size()) != n)
            fatal(cat("dfg '", dfg.name(),
                      "': affinity order failed (cycle?)"));
    }
    return s;
}

} // namespace mapzero::dfg
