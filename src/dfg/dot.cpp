#include "dfg/dot.hpp"

#include <cctype>
#include <map>
#include <sstream>

#include "common/log.hpp"

namespace mapzero::dfg {

std::string
toDot(const Dfg &dfg)
{
    std::ostringstream os;
    writeDot(dfg, os);
    return os.str();
}

void
writeDot(const Dfg &dfg, std::ostream &os)
{
    os << "digraph \"" << dfg.name() << "\" {\n";
    for (NodeId v = 0; v < dfg.nodeCount(); ++v) {
        const DfgNode &node = dfg.node(v);
        os << "  n" << v << " [opcode=" << opcodeName(node.opcode);
        if (!node.name.empty())
            os << " label=\"" << node.name << "\"";
        os << "];\n";
    }
    for (const auto &e : dfg.edges()) {
        os << "  n" << e.src << " -> n" << e.dst;
        if (e.distance != 0)
            os << " [distance=" << e.distance << "]";
        os << ";\n";
    }
    os << "}\n";
}

namespace {

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse `key=value` pairs inside `[...]` (values may be quoted). */
std::map<std::string, std::string>
parseAttrs(const std::string &text)
{
    std::map<std::string, std::string> attrs;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[i])) ||
                text[i] == ','))
            ++i;
        std::size_t eq = text.find('=', i);
        if (eq == std::string::npos)
            break;
        const std::string key = trim(text.substr(i, eq - i));
        std::size_t j = eq + 1;
        std::string value;
        if (j < text.size() && text[j] == '"') {
            std::size_t close = text.find('"', j + 1);
            if (close == std::string::npos)
                fatal("DOT parse: unterminated quoted attribute");
            value = text.substr(j + 1, close - j - 1);
            i = close + 1;
        } else {
            std::size_t end = j;
            while (end < text.size() && text[end] != ',' &&
                   !std::isspace(static_cast<unsigned char>(text[end])))
                ++end;
            value = text.substr(j, end - j);
            i = end;
        }
        attrs[key] = value;
    }
    return attrs;
}

/** Parse a `nK` identifier to K. */
NodeId
parseNodeId(const std::string &token)
{
    if (token.size() < 2 || token[0] != 'n')
        fatal("DOT parse: expected node id like n3, got '" + token + "'");
    return static_cast<NodeId>(std::stoi(token.substr(1)));
}

} // namespace

Dfg
fromDot(const std::string &text)
{
    std::istringstream is(text);
    return readDot(is);
}

Dfg
readDot(std::istream &is)
{
    Dfg dfg;
    std::string line;
    bool seen_header = false;
    struct PendingEdge { NodeId src, dst; std::int32_t distance; };
    std::vector<PendingEdge> pending;
    std::map<NodeId, std::pair<Opcode, std::string>> node_decls;

    while (std::getline(is, line)) {
        line = trim(line);
        if (line.empty() || line == "}")
            continue;
        if (line.rfind("digraph", 0) == 0) {
            seen_header = true;
            const std::size_t q1 = line.find('"');
            const std::size_t q2 =
                q1 == std::string::npos ? q1 : line.find('"', q1 + 1);
            if (q1 != std::string::npos && q2 != std::string::npos)
                dfg.setName(line.substr(q1 + 1, q2 - q1 - 1));
            continue;
        }

        // Chop trailing ';'.
        if (!line.empty() && line.back() == ';')
            line.pop_back();

        std::map<std::string, std::string> attrs;
        const std::size_t lb = line.find('[');
        if (lb != std::string::npos) {
            const std::size_t rb = line.rfind(']');
            if (rb == std::string::npos || rb < lb)
                fatal("DOT parse: unbalanced attribute brackets");
            attrs = parseAttrs(line.substr(lb + 1, rb - lb - 1));
            line = trim(line.substr(0, lb));
        }

        const std::size_t arrow = line.find("->");
        if (arrow != std::string::npos) {
            const NodeId src = parseNodeId(trim(line.substr(0, arrow)));
            const NodeId dst = parseNodeId(trim(line.substr(arrow + 2)));
            std::int32_t distance = 0;
            if (const auto it = attrs.find("distance"); it != attrs.end())
                distance = std::stoi(it->second);
            pending.push_back(PendingEdge{src, dst, distance});
        } else if (!line.empty()) {
            const NodeId id = parseNodeId(line);
            Opcode op = Opcode::Add;
            if (const auto it = attrs.find("opcode"); it != attrs.end())
                op = parseOpcode(it->second);
            std::string label;
            if (const auto it = attrs.find("label"); it != attrs.end())
                label = it->second;
            node_decls[id] = {op, label};
        }
    }
    if (!seen_header)
        fatal("DOT parse: missing 'digraph' header");

    // Node ids must be dense 0..n-1 in this dialect.
    for (const auto &[id, decl] : node_decls) {
        if (id != dfg.nodeCount())
            fatal(cat("DOT parse: non-contiguous node id n", id));
        dfg.addNode(decl.first, decl.second);
    }
    for (const auto &e : pending)
        dfg.addEdge(e.src, e.dst, e.distance);

    dfg.validate();
    return dfg;
}

} // namespace mapzero::dfg
