/**
 * @file
 * Data flow graph intermediate representation.
 *
 * A Dfg is a directed multigraph of operations. Edges carry an iteration
 * *distance*: 0 for ordinary intra-iteration dependencies, >= 1 for
 * loop-carried dependencies (an accumulator has a distance-1 self edge).
 * The distance-0 subgraph must be acyclic; cycles through positive-distance
 * edges are what bound the recurrence-constrained minimum II.
 */

#ifndef MAPZERO_DFG_DFG_HPP
#define MAPZERO_DFG_DFG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/opcode.hpp"

namespace mapzero::dfg {

/** Node id within one Dfg. */
using NodeId = std::int32_t;

/** One operation. */
struct DfgNode {
    Opcode opcode = Opcode::Add;
    /** Optional human-readable label (DOT export, debugging). */
    std::string name;
};

/** One dependency. */
struct DfgEdge {
    NodeId src = -1;
    NodeId dst = -1;
    /** Loop-carried iteration distance; 0 = same iteration. */
    std::int32_t distance = 0;
};

/** Directed multigraph of operations. */
class Dfg
{
  public:
    Dfg() = default;

    /** Optional kernel name (reported by benches). */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a node; returns its id. */
    NodeId addNode(Opcode opcode, std::string name = "");

    /**
     * Append an edge.
     * @param distance loop-carried iteration distance (>= 0)
     */
    void addEdge(NodeId src, NodeId dst, std::int32_t distance = 0);

    std::int32_t nodeCount() const;
    std::int32_t edgeCount() const;

    const DfgNode &node(NodeId id) const;
    const std::vector<DfgNode> &nodes() const { return nodes_; }
    const std::vector<DfgEdge> &edges() const { return edges_; }

    /** Edge indices entering @p id. */
    const std::vector<std::int32_t> &inEdges(NodeId id) const;
    /** Edge indices leaving @p id. */
    const std::vector<std::int32_t> &outEdges(NodeId id) const;

    /** In-degree counting every edge (including loop-carried). */
    std::int32_t inDegree(NodeId id) const;
    std::int32_t outDegree(NodeId id) const;

    /** Distinct predecessor node ids over distance-0 edges. */
    std::vector<NodeId> predecessors(NodeId id) const;
    /** Distinct successor node ids over distance-0 edges. */
    std::vector<NodeId> successors(NodeId id) const;

    /** Whether @p id has a self edge (necessarily loop-carried). */
    bool hasSelfCycle(NodeId id) const;

    /** Count of nodes whose opcode is in the Memory class. */
    std::int32_t memoryOpCount() const;

    /**
     * Structural validation: edge endpoints in range, distances >= 0,
     * self edges have distance >= 1, distance-0 subgraph is acyclic.
     * fatal() describing the first violation.
     */
    void validate() const;

    /** True when the distance-0 subgraph is acyclic. */
    bool isDistanceZeroAcyclic() const;

    /**
     * Canonical byte encoding of the graph structure: node opcodes in
     * id order plus every edge (src, dst, distance). Excludes node and
     * kernel names, which affect reports but never mapping. Used as
     * cache-key material (MCTS transposition prefix, persistent result
     * tier).
     */
    std::string canonicalBytes() const;

  private:
    std::string name_;
    std::vector<DfgNode> nodes_;
    std::vector<DfgEdge> edges_;
    std::vector<std::vector<std::int32_t>> inEdges_;
    std::vector<std::vector<std::int32_t>> outEdges_;
};

} // namespace mapzero::dfg

#endif // MAPZERO_DFG_DFG_HPP
