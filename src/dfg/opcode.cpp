#include "dfg/opcode.hpp"

#include <unordered_map>

#include "common/log.hpp"

namespace mapzero::dfg {

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
        return OpClass::Memory;
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Cmp:
      case Opcode::Select:
        return OpClass::Logic;
      case Opcode::Const:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mac:
      case Opcode::Phi:
      case Opcode::Route:
        return OpClass::Arithmetic;
    }
    panic("unknown opcode");
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const:  return "const";
      case Opcode::Add:    return "add";
      case Opcode::Sub:    return "sub";
      case Opcode::Mul:    return "mul";
      case Opcode::Div:    return "div";
      case Opcode::Mac:    return "mac";
      case Opcode::Shl:    return "shl";
      case Opcode::Shr:    return "shr";
      case Opcode::And:    return "and";
      case Opcode::Or:     return "or";
      case Opcode::Xor:    return "xor";
      case Opcode::Not:    return "not";
      case Opcode::Cmp:    return "cmp";
      case Opcode::Select: return "select";
      case Opcode::Load:   return "load";
      case Opcode::Store:  return "store";
      case Opcode::Phi:    return "phi";
      case Opcode::Route:  return "route";
    }
    panic("unknown opcode");
}

Opcode
parseOpcode(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (std::int32_t i = 0; i < kOpcodeCount; ++i) {
            const auto op = static_cast<Opcode>(i);
            t.emplace(opcodeName(op), op);
        }
        return t;
    }();
    const auto it = table.find(name);
    if (it == table.end())
        fatal("unknown opcode mnemonic: " + name);
    return it->second;
}

} // namespace mapzero::dfg
