#include "svc/session.hpp"

#include "common/metrics.hpp"

namespace mapzero::svc {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:    return "QUEUED";
      case JobState::Running:   return "RUNNING";
      case JobState::Done:      return "DONE";
      case JobState::Failed:    return "FAILED";
      case JobState::Cancelled: return "CANCELLED";
    }
    return "UNKNOWN";
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled;
}

SessionTable::SessionTable(std::size_t retainTerminal)
    : retainTerminal_(retainTerminal)
{}

JobId
SessionTable::add(std::string dfgName, std::string archName,
                  std::string method)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const JobId id = nextId_++;
    Record record;
    record.snapshot.id = id;
    record.snapshot.state = JobState::Queued;
    record.snapshot.dfgName = std::move(dfgName);
    record.snapshot.archName = std::move(archName);
    record.snapshot.method = std::move(method);
    record.cancel = std::make_shared<std::atomic<bool>>(false);
    // The context's epoch is now, so every stage offset is
    // "microseconds after SUBMIT" and queue wait starts at 0.
    record.trace = std::make_shared<TraceContext>(
        "job-" + std::to_string(id));
    record.submittedAt = std::chrono::steady_clock::now();
    jobs_.emplace(id, std::move(record));
    ++counts_.submitted;
    return id;
}

bool
SessionTable::get(JobId id, JobSnapshot &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    out = it->second.snapshot;
    // Live timings for non-terminal jobs (terminal ones were frozen at
    // the transition).
    if (out.state == JobState::Queued)
        out.queuedSeconds = secondsSince(it->second.submittedAt);
    else if (out.state == JobState::Running)
        out.runSeconds = secondsSince(it->second.startedAt);
    return true;
}

bool
SessionTable::markRunning(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() ||
        it->second.snapshot.state != JobState::Queued)
        return false;
    it->second.snapshot.state = JobState::Running;
    it->second.snapshot.queuedSeconds =
        secondsSince(it->second.submittedAt);
    it->second.startedAt = std::chrono::steady_clock::now();
    // The worker arms queue_wait as the trace's pending stage when it
    // dequeues the job; the compile's first stage closes it with its
    // own start time, so the timeline stays gap-free from offset 0.
    return true;
}

std::optional<JobSnapshot>
SessionTable::finish(JobId id, std::string resultJson, bool cancelled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() ||
        jobStateTerminal(it->second.snapshot.state))
        return std::nullopt;
    it->second.snapshot.state =
        cancelled ? JobState::Cancelled : JobState::Done;
    it->second.snapshot.runSeconds =
        secondsSince(it->second.startedAt);
    it->second.snapshot.result = std::move(resultJson);
    it->second.snapshot.traceJson = it->second.trace->timelineJson();
    (cancelled ? counts_.cancelled : counts_.done) += 1;
    JobSnapshot frozen = it->second.snapshot;
    terminalOrder_.push_back(id);
    evictLocked(); // may erase the record; `frozen` survives
    return frozen;
}

std::optional<JobSnapshot>
SessionTable::fail(JobId id, std::string error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() ||
        jobStateTerminal(it->second.snapshot.state))
        return std::nullopt;
    it->second.snapshot.state = JobState::Failed;
    it->second.snapshot.runSeconds =
        secondsSince(it->second.startedAt);
    it->second.snapshot.result = std::move(error);
    it->second.snapshot.traceJson = it->second.trace->timelineJson();
    ++counts_.failed;
    JobSnapshot frozen = it->second.snapshot;
    terminalOrder_.push_back(id);
    evictLocked(); // may erase the record; `frozen` survives
    return frozen;
}

std::optional<JobState>
SessionTable::cancel(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    Record &record = it->second;
    record.cancel->store(true);
    if (record.snapshot.state == JobState::Queued) {
        record.snapshot.state = JobState::Cancelled;
        record.snapshot.queuedSeconds =
            secondsSince(record.submittedAt);
        // The job's whole life was queue wait; freeze that timeline.
        record.trace->addStage("queue_wait", 0, record.trace->nowUs(),
                               0);
        record.snapshot.traceJson = record.trace->timelineJson();
        ++counts_.cancelled;
        terminalOrder_.push_back(id);
        evictLocked();
        return JobState::Cancelled;
    }
    return record.snapshot.state;
}

std::shared_ptr<std::atomic<bool>>
SessionTable::cancelFlag(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.cancel;
}

std::shared_ptr<TraceContext>
SessionTable::trace(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.trace;
}

std::optional<std::string>
SessionTable::traceJson(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    if (jobStateTerminal(it->second.snapshot.state))
        return it->second.snapshot.traceJson;
    return it->second.trace->timelineJson();
}

std::size_t
SessionTable::activeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t active = 0;
    for (const auto &[id, record] : jobs_)
        active += jobStateTerminal(record.snapshot.state) ? 0 : 1;
    return active;
}

SessionTable::Counts
SessionTable::counts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

void
SessionTable::evictLocked()
{
    static Counter &evicted = metrics().counter("svc.evicted_total");
    while (terminalOrder_.size() > retainTerminal_) {
        jobs_.erase(terminalOrder_.front());
        terminalOrder_.pop_front();
        evicted.add();
    }
}

} // namespace mapzero::svc
