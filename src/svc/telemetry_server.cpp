#include "svc/telemetry_server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/procstat.hpp"
#include "common/timeseries.hpp"
#include "svc/daemon_state.hpp"
#include "svc/prometheus.hpp"
#include "svc/slowlog.hpp"

namespace mapzero::svc {

namespace {

/** Hard cap on request bytes read (a scrape request is ~100 bytes). */
constexpr std::size_t kMaxRequestBytes = 8192;
/** Fallback poll granularity; the self-pipe wakes stop() instantly. */
constexpr int kAcceptPollMs = 1000;

/** "release" or "debug", from how this TU was compiled. */
const char *
buildMode()
{
#ifdef NDEBUG
    return "release";
#else
    return "debug";
#endif
}

/** Which sanitizer (if any) instruments this build. */
const char *
sanitizerName()
{
#if defined(__SANITIZE_THREAD__)
    return "thread";
#elif defined(__SANITIZE_ADDRESS__)
    return "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    return "thread";
#elif __has_feature(address_sanitizer)
    return "address";
#else
    return "none";
#endif
#else
    return "none";
#endif
}

/** Write all of @p data to @p fd (best-effort; the peer may vanish). */
void
writeAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

TelemetryServer &
TelemetryServer::global()
{
    static TelemetryServer instance;
    return instance;
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

bool
TelemetryServer::start(const TelemetryOptions &options)
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (running_.load())
        return true;
    options_ = options;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("telemetry: socket() failed; live telemetry disabled");
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        warn("telemetry: bad bind address " + options.bindAddress);
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        warn(cat("telemetry: cannot listen on ", options.bindAddress,
                 ":", options.port, " (", std::strerror(errno),
                 "); live telemetry disabled"));
        ::close(fd);
        return false;
    }

    sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_.store(static_cast<int>(ntohs(bound.sin_port)));
    else
        port_.store(options.port);

    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0) {
        warn("telemetry: pipe() failed; live telemetry disabled");
        ::close(fd);
        return false;
    }
    wakeReadFd_ = wake[0];
    wakeWriteFd_ = wake[1];

    listenFd_.store(fd);
    stopRequested_.store(false);
    startedAt_ = std::chrono::steady_clock::now();
    running_.store(true);

    // History must exist before the first scrape asks for it.
    TimeSeriesRecorder::global().start(options.samplePeriodMs);

    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (!running_.load())
        return;
    stopRequested_.store(true);
    // Wake the accept poll() immediately instead of waiting out its
    // timeout - stop() is on the exit path of every run that enabled
    // telemetry.
    const char byte = 0;
    (void)!::write(wakeWriteFd_, &byte, 1);
    acceptThread_.join();
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0)
        ::close(fd);
    ::close(wakeReadFd_);
    ::close(wakeWriteFd_);
    wakeReadFd_ = wakeWriteFd_ = -1;
    running_.store(false);
    port_.store(0);
    TimeSeriesRecorder::global().stop();
}

void
TelemetryServer::acceptLoop()
{
    const int listen_fd = listenFd_.load();
    while (!stopRequested_.load()) {
        pollfd pfds[2] = {};
        pfds[0].fd = listen_fd;
        pfds[0].events = POLLIN;
        pfds[1].fd = wakeReadFd_;
        pfds[1].events = POLLIN;
        const int ready = ::poll(pfds, 2, kAcceptPollMs);
        if (ready <= 0)
            continue; // timeout (re-check stop) or transient error
        if (pfds[1].revents != 0)
            break; // stop() wrote to the self-pipe
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        serveConnection(conn);
        ::close(conn);
    }
}

void
TelemetryServer::serveConnection(int fd)
{
    // Per-recv timeout of 100ms; the overall request budget is
    // enforced by the deadline below, so a peer dribbling one byte
    // per poll cannot pin the accept thread past requestTimeoutMs.
    timeval timeout = {};
    timeout.tv_usec = 100 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            options_.requestTimeoutMs > 0 ? options_.requestTimeoutMs
                                          : 2000);

    std::string raw;
    char buffer[2048];
    while (raw.size() < kMaxRequestBytes &&
           !httpHeadersComplete(raw)) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n == 0)
            break; // peer closed
        if (n < 0) {
            if ((errno == EAGAIN || errno == EWOULDBLOCK ||
                 errno == EINTR) &&
                std::chrono::steady_clock::now() < deadline)
                continue;
            break; // overall budget elapsed or hard error
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    if (raw.empty())
        return; // peer connected and said nothing: nothing to answer

    HttpRequest request;
    std::string response;
    if (!httpHeadersComplete(raw)) {
        // Bytes arrived but the headers never finished: either the
        // request blew the size cap or the peer stalled/disconnected
        // mid-request. Answer 400 promptly and close.
        response = httpResponse(
            400, "text/plain",
            raw.size() >= kMaxRequestBytes
                ? "request too large\n"
                : "incomplete request\n");
    } else if (!parseHttpRequest(raw, request)) {
        response =
            httpResponse(400, "text/plain", "malformed request\n");
    } else {
        try {
            response = handle(request);
        } catch (const std::exception &error) {
            // A scrape must never take the process down with it.
            response = httpResponse(
                500, "text/plain",
                std::string("internal error: ") + error.what() + "\n");
        }
    }
    requests_.fetch_add(1);
    writeAll(fd, response);
}

std::string
TelemetryServer::handle(const HttpRequest &request)
{
    if (request.method != "GET")
        return httpResponse(405, "text/plain",
                            "only GET is supported\n");
    if (request.path == "/metrics")
        return handleMetrics();
    if (request.path == "/snapshot.json")
        return handleSnapshot();
    if (request.path == "/journal")
        return handleJournal(request);
    if (request.path == "/slowlog")
        return httpResponse(200, "application/json",
                            Slowlog::global().toJson());
    if (request.path == "/trace")
        return handleTrace(request);
    if (request.path == "/healthz" || request.path == "/")
        return handleHealthz();
    return httpResponse(404, "text/plain",
                        "unknown path (try /metrics, /snapshot.json, "
                        "/journal?n=K, /slowlog, /trace?job=ID, "
                        "/healthz)\n");
}

std::string
TelemetryServer::handleMetrics()
{
    // Scrapes double as resource probes: refresh proc.* first so the
    // exposition always carries current RSS/CPU numbers even when the
    // time-series recorder is off.
    publishProcMetrics();
    return httpResponse(200, kPrometheusContentType,
                        renderPrometheus(metrics().snapshot()));
}

std::string
TelemetryServer::handleSnapshot()
{
    publishProcMetrics();
    std::ostringstream body;
    body << "{\n\"metrics\": " << metrics().snapshotJson()
         << ",\n\"timeseries\": "
         << TimeSeriesRecorder::global().snapshotJson() << "}\n";
    return httpResponse(200, "application/json", body.str());
}

std::string
TelemetryServer::handleJournal(const HttpRequest &request)
{
    // The tail length is clamped: the journal itself is bounded, but
    // a huge or garbage `n` must not be able to size anything.
    constexpr std::size_t kMaxJournalTail = 10000;
    std::size_t n = 100;
    if (const auto it = request.query.find("n");
        it != request.query.end()) {
        const std::string &value = it->second;
        const bool digits_only =
            !value.empty() &&
            std::all_of(value.begin(), value.end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c));
            });
        if (!digits_only)
            return httpResponse(400, "text/plain",
                                "n must be a positive integer\n");
        // Longer than 9 digits cannot fit below the clamp anyway;
        // skip the parse rather than risk overflow.
        const long long parsed =
            value.size() > 9
                ? static_cast<long long>(kMaxJournalTail)
                : std::atoll(value.c_str());
        if (parsed <= 0)
            return httpResponse(400, "text/plain",
                                "n must be a positive integer\n");
        n = std::min(static_cast<std::size_t>(parsed),
                     kMaxJournalTail);
    }
    const std::vector<std::string> lines = journal().lines();
    const std::size_t start =
        lines.size() > n ? lines.size() - n : 0;
    std::string body;
    for (std::size_t i = start; i < lines.size(); ++i) {
        body += lines[i];
        body += '\n';
    }
    return httpResponse(200, "application/x-ndjson", body);
}

std::string
TelemetryServer::handleTrace(const HttpRequest &request)
{
    const auto it = request.query.find("job");
    if (it == request.query.end())
        return httpResponse(400, "text/plain",
                            "missing job query parameter "
                            "(/trace?job=ID)\n");
    const std::string &value = it->second;
    const bool digits_only =
        !value.empty() && value.size() <= 19 &&
        std::all_of(value.begin(), value.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c));
        });
    if (!digits_only)
        return httpResponse(400, "text/plain",
                            "job must be a positive integer\n");
    const std::uint64_t id = std::strtoull(value.c_str(), nullptr, 10);
    // Resolved through the daemon_state slot: this server never links
    // the daemon, it only runs whatever resolver mapzerod installed.
    const std::optional<std::string> timeline = lookupDaemonTrace(id);
    if (!timeline)
        return httpResponse(404, "text/plain",
                            "unknown job (no daemon running, or the "
                            "job was never submitted / already "
                            "evicted)\n");
    return httpResponse(200, "application/json", *timeline + "\n");
}

std::string
TelemetryServer::handleHealthz()
{
    const double uptime =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - startedAt_)
            .count();
    const ProcStat stat = sampleProcStat();
    std::ostringstream body;
    body << "{\"status\": \"ok\", \"service\": \"mapzero-telemetry\""
         << ", \"pid\": " << static_cast<long long>(::getpid())
         << ", \"port\": " << port_.load()
         << ", \"uptime_seconds\": " << jsonNumber(uptime)
         << ", \"requests\": " << requests_.load()
         << ", \"rss_bytes\": " << stat.rssBytes
         << ", \"threads\": " << stat.threads
         << ", \"metrics_enabled\": "
         << (metrics().enabled() ? "true" : "false")
         << ", \"journal_enabled\": "
         << (journal().enabled() ? "true" : "false")
         << ", \"timeseries_period_ms\": "
         << TimeSeriesRecorder::global().periodMs()
         << ", \"build\": \"" << buildMode() << "\""
         << ", \"sanitizer\": \"" << sanitizerName() << "\""
         << ", \"daemon_state\": \""
         << daemonPhaseName(daemonPhase()) << "\"}\n";
    return httpResponse(200, "application/json", body.str());
}

int
ensureTelemetryServer(int stats_port)
{
    if (stats_port < 0)
        return -1;
    TelemetryServer &server = TelemetryServer::global();
    if (server.running())
        return server.port();
    TelemetryOptions options;
    options.port = stats_port;
    if (!server.start(options))
        return -1;
    // Scripts drive `--stats-port 0` and need the chosen port; print
    // it eagerly (and flushed) so it is readable before the run ends.
    std::printf("telemetry: listening on http://127.0.0.1:%d (try "
                "/metrics, /healthz)\n",
                server.port());
    std::fflush(stdout);
    inform(cat("telemetry server listening on port ", server.port()));
    return server.port();
}

} // namespace mapzero::svc
