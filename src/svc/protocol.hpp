/**
 * @file
 * The mapzerod wire protocol: length-prefixed binary frames over TCP
 * (DESIGN.md §14).
 *
 * Framing: every message is
 *
 *     u32  payload length (little-endian, excludes the 5-byte header)
 *     u8   opcode
 *     ...  payload
 *
 * Requests: SUBMIT (DFG DOT text + arch name + compile options),
 * STATUS / FETCH / CANCEL / TRACE (a job id), DRAIN, PING. The server
 * answers every request with one REPLY frame whose payload starts with a u8
 * status code (OK, BUSY, NOT_FOUND, ...) followed by an op-specific
 * body, then closes the connection - one request per connection, the
 * same HTTP/1.0-style simplicity the telemetry server uses.
 *
 * Integers are explicit little-endian (no struct punning), strings are
 * u32 length + raw bytes, doubles travel as their IEEE-754 bit pattern
 * in a u64. Payloads are capped at kMaxFrameBytes; a peer announcing
 * more is answered with BAD_REQUEST and disconnected before any
 * allocation happens - the length prefix is attacker-controlled input.
 *
 * Decoding is all bounds-checked pull-parsing (WireReader never reads
 * past the buffer; any short read poisons the reader), so a truncated
 * or malicious payload degrades to a BAD_REQUEST, never UB.
 */

#ifndef MAPZERO_SVC_PROTOCOL_HPP
#define MAPZERO_SVC_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "common/timer.hpp"

namespace mapzero::svc {

/** Protocol revision; bumped on any incompatible framing change. */
constexpr std::uint8_t kProtocolVersion = 1;

/** Hard cap on a frame payload (DFG text dominates; 1 MiB is ample). */
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Request/response opcodes (u8 on the wire). */
enum class Op : std::uint8_t {
    Submit = 0x01, ///< DFG + arch + options -> job id
    Status = 0x02, ///< job id -> state + timings
    Fetch = 0x03,  ///< job id -> result JSON blob
    Cancel = 0x04, ///< job id -> cancellation requested/applied
    Drain = 0x05,  ///< stop admitting, finish in-flight, exit
    Ping = 0x06,   ///< liveness + queue probe
    Trace = 0x07,  ///< job id -> state + request timeline JSON
    Reply = 0x80,  ///< the single response opcode
};

/** Reply status codes (first payload byte of every Reply). */
enum class Status : std::uint8_t {
    Ok = 0,
    Busy = 1,       ///< admission control: job queue is full
    NotFound = 2,   ///< unknown job id
    BadRequest = 3, ///< malformed frame/payload/field
    Draining = 4,   ///< daemon no longer admits new work
    Error = 5,      ///< internal failure (message in body)
    NotReady = 6,   ///< FETCH of a job still queued/running
};

/** Human-readable status name ("OK", "BUSY", ...). */
const char *statusName(Status status);

/** One decoded frame. */
struct Frame {
    Op op = Op::Reply;
    std::string payload;
};

/** Everything a SUBMIT carries. */
struct SubmitRequest {
    /** Kernel as DOT text (dfg/dot.hpp dialect). */
    std::string dfgDot;
    /** Target fabric preset name (cgra::Architecture::byName). */
    std::string archName;
    /** Method byte, same numbering as mapzero::Method. */
    std::uint8_t method = 0;
    double timeLimitSeconds = 10.0;
    std::uint64_t seed = 1;
    std::uint32_t restartsPerIi = 0;
    std::uint32_t jobs = 1;
    bool evalCache = true;
};

// ------------------------------------------------------------- encoding

/** Append-only little-endian encoder backing every payload builder. */
class WireWriter
{
  public:
    void u8(std::uint8_t value) { buffer_ += static_cast<char>(value); }
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    /** IEEE-754 bit pattern in a u64. */
    void f64(double value);
    /** u32 length + raw bytes. */
    void str(std::string_view value);

    const std::string &bytes() const { return buffer_; }

  private:
    std::string buffer_;
};

/**
 * Bounds-checked little-endian pull decoder. Every accessor returns a
 * value and keeps ok() true only while all reads so far were in
 * bounds; once a read runs short the reader is poisoned (ok() false,
 * zero/empty results) - callers check ok() once at the end.
 */
class WireReader
{
  public:
    explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    /** True when every byte has been consumed (and ok()). */
    bool done() const { return ok_ && pos_ == bytes_.size(); }

  private:
    bool take(std::size_t count, const char *&out);

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Render a complete frame (header + payload). */
std::string encodeFrame(Op op, std::string_view payload);

/** SUBMIT payload for @p request. */
std::string encodeSubmit(const SubmitRequest &request);

/** Decode a SUBMIT payload; false on truncation/trailing garbage. */
bool decodeSubmit(std::string_view payload, SubmitRequest &out);

// ------------------------------------------------------------ socket IO

/**
 * Read one frame from @p fd into @p out. Returns Status::Ok on a
 * complete frame, BadRequest on malformed/oversized framing, Error on
 * EOF/socket errors/deadline expiry. Reads at most
 * kMaxFrameBytes + header bytes and never blocks past @p deadline
 * (enforced with a short SO_RCVTIMEO poll granularity).
 */
Status readFrame(int fd, Frame &out, const Deadline &deadline);

/** Write header + payload to @p fd; false when the peer vanished. */
bool writeFrame(int fd, Op op, std::string_view payload);

/** writeFrame of a Reply whose payload is status byte + @p body. */
bool writeReply(int fd, Status status, std::string_view body = {});

} // namespace mapzero::svc

#endif // MAPZERO_SVC_PROTOCOL_HPP
