/**
 * @file
 * Blocking client for the mapzerod wire protocol (svc/protocol.hpp):
 * one TCP connection per request, length-prefixed frames, loopback by
 * default. Used by the CLI `submit`/`status`/`fetch`/`cancel`/`drain`
 * subcommands and by the daemon tests; kept protocol-only (no compiler
 * dependencies) so it lives in the base svc library.
 */

#ifndef MAPZERO_SVC_CLIENT_HPP
#define MAPZERO_SVC_CLIENT_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "svc/protocol.hpp"
#include "svc/session.hpp"

namespace mapzero::svc {

/** Decoded STATUS reply. */
struct JobStatus {
    JobState state = JobState::Queued;
    double queuedSeconds = 0.0;
    double runSeconds = 0.0;
};

/** Decoded FETCH reply (result JSON for DONE, error text for FAILED). */
struct JobResult {
    JobState state = JobState::Queued;
    std::string blob;
};

/** Decoded TRACE reply. */
struct JobTrace {
    JobState state = JobState::Queued;
    /** Request timeline JSON (TraceContext::timelineJson). */
    std::string timelineJson;
};

/** Decoded PING reply. */
struct DaemonInfo {
    std::uint8_t phase = 0;
    std::uint32_t queueDepth = 0;
    std::uint32_t workers = 0;
    std::uint64_t activeJobs = 0;
};

/**
 * One mapzerod endpoint. Every call opens a fresh connection, sends a
 * single frame, and blocks for the reply (the daemon serves one
 * request per connection). All calls return the wire Status; Error is
 * also used for local connect/decode failures, with lastError() set.
 */
class Client
{
  public:
    explicit Client(int port, std::string host = "127.0.0.1",
                    double timeoutSeconds = 10.0);

    /** SUBMIT: on Ok, @p jobId and @p queueDepth are filled in. */
    Status submit(const SubmitRequest &request, std::uint64_t &jobId,
                  std::uint32_t &queueDepth);

    /** STATUS for @p jobId. */
    Status status(std::uint64_t jobId, JobStatus &out);

    /** FETCH: Ok with the blob when terminal, NotReady otherwise. */
    Status fetch(std::uint64_t jobId, JobResult &out);

    /** CANCEL: on Ok, @p state is the job's state after the cancel. */
    Status cancel(std::uint64_t jobId, JobState &state);

    /**
     * TRACE: the job's request timeline (frozen for terminal jobs, the
     * stages recorded so far for live ones).
     */
    Status trace(std::uint64_t jobId, JobTrace &out);

    /** DRAIN: ask the daemon to stop accepting and finish up. */
    Status drain();

    /** PING: liveness + load snapshot. */
    Status ping(DaemonInfo &out);

    /**
     * Poll STATUS until @p jobId is terminal or @p timeoutSeconds
     * elapses; returns the final snapshot (nullopt on timeout or
     * request failure, with lastError() describing why).
     *
     * @p pollSeconds is the *initial* poll interval: each subsequent
     * sleep grows by ~1.6x up to a 1 s cap (and never past the
     * deadline), so short jobs still resolve within milliseconds while
     * hundreds of long-job waiters poll the daemon about once a second
     * instead of hammering it at a fixed rate.
     */
    std::optional<JobStatus> waitForJob(std::uint64_t jobId,
                                        double timeoutSeconds,
                                        double pollSeconds = 0.05);

    /** Human-readable detail for the most recent non-Ok return. */
    const std::string &lastError() const { return lastError_; }

  private:
    /** Connect, send @p op/@p payload, read the one reply frame. */
    Status roundTrip(Op op, std::string_view payload,
                     std::string &replyBody);

    int port_;
    std::string host_;
    double timeoutSeconds_;
    std::string lastError_;
};

} // namespace mapzero::svc

#endif // MAPZERO_SVC_CLIENT_HPP
