#include "svc/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace mapzero::svc {

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok:         return "OK";
      case Status::Busy:       return "BUSY";
      case Status::NotFound:   return "NOT_FOUND";
      case Status::BadRequest: return "BAD_REQUEST";
      case Status::Draining:   return "DRAINING";
      case Status::Error:      return "ERROR";
      case Status::NotReady:   return "NOT_READY";
    }
    return "UNKNOWN";
}

// ------------------------------------------------------------- encoding

void
WireWriter::u32(std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        buffer_ += static_cast<char>((value >> shift) & 0xff);
}

void
WireWriter::u64(std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        buffer_ += static_cast<char>((value >> shift) & 0xff);
}

void
WireWriter::f64(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(std::string_view value)
{
    u32(static_cast<std::uint32_t>(value.size()));
    buffer_.append(value.data(), value.size());
}

bool
WireReader::take(std::size_t count, const char *&out)
{
    if (!ok_ || bytes_.size() - pos_ < count) {
        ok_ = false;
        return false;
    }
    out = bytes_.data() + pos_;
    pos_ += count;
    return true;
}

std::uint8_t
WireReader::u8()
{
    const char *p = nullptr;
    if (!take(1, p))
        return 0;
    return static_cast<std::uint8_t>(*p);
}

std::uint32_t
WireReader::u32()
{
    const char *p = nullptr;
    if (!take(4, p))
        return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
WireReader::u64()
{
    const char *p = nullptr;
    if (!take(8, p))
        return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
    return value;
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return ok_ ? value : 0.0;
}

std::string
WireReader::str()
{
    const std::uint32_t length = u32();
    // The length is attacker-controlled; refuse anything that cannot
    // fit in a legal frame before touching the buffer.
    if (length > kMaxFrameBytes) {
        ok_ = false;
        return {};
    }
    const char *p = nullptr;
    if (!take(length, p))
        return {};
    return std::string(p, length);
}

std::string
encodeFrame(Op op, std::string_view payload)
{
    WireWriter writer;
    writer.u32(static_cast<std::uint32_t>(payload.size()));
    writer.u8(static_cast<std::uint8_t>(op));
    std::string frame = writer.bytes();
    frame.append(payload.data(), payload.size());
    return frame;
}

std::string
encodeSubmit(const SubmitRequest &request)
{
    WireWriter writer;
    writer.str(request.dfgDot);
    writer.str(request.archName);
    writer.u8(request.method);
    writer.f64(request.timeLimitSeconds);
    writer.u64(request.seed);
    writer.u32(request.restartsPerIi);
    writer.u32(request.jobs);
    writer.u8(request.evalCache ? 1 : 0);
    return writer.bytes();
}

bool
decodeSubmit(std::string_view payload, SubmitRequest &out)
{
    WireReader reader(payload);
    out.dfgDot = reader.str();
    out.archName = reader.str();
    out.method = reader.u8();
    out.timeLimitSeconds = reader.f64();
    out.seed = reader.u64();
    out.restartsPerIi = reader.u32();
    out.jobs = reader.u32();
    out.evalCache = reader.u8() != 0;
    return reader.done();
}

// ------------------------------------------------------------ socket IO

namespace {

/** Short receive timeout so the deadline is polled promptly. */
void
setRecvTimeout(int fd, int ms)
{
    timeval tv = {};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** Read exactly @p count bytes; false on EOF/error/deadline. */
bool
readExactly(int fd, char *buffer, std::size_t count,
            const Deadline &deadline)
{
    std::size_t got = 0;
    while (got < count) {
        if (deadline.expired())
            return false;
        const ssize_t n = ::recv(fd, buffer + got, count - got, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                continue; // timeout tick: re-check the deadline
            return false;
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Status
readFrame(int fd, Frame &out, const Deadline &deadline)
{
    setRecvTimeout(fd, 100);
    char header[5];
    if (!readExactly(fd, header, sizeof(header), deadline))
        return Status::Error;
    WireReader reader(std::string_view(header, sizeof(header)));
    const std::uint32_t length = reader.u32();
    const std::uint8_t op = reader.u8();
    if (length > kMaxFrameBytes)
        return Status::BadRequest;
    out.op = static_cast<Op>(op);
    out.payload.resize(length);
    if (length > 0 &&
        !readExactly(fd, out.payload.data(), length, deadline))
        return Status::Error;
    return Status::Ok;
}

bool
writeFrame(int fd, Op op, std::string_view payload)
{
    const std::string frame = encodeFrame(op, payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd, frame.data() + sent, frame.size() - sent,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeReply(int fd, Status status, std::string_view body)
{
    std::string payload;
    payload += static_cast<char>(status);
    payload.append(body.data(), body.size());
    return writeFrame(fd, Op::Reply, payload);
}

} // namespace mapzero::svc
