#include "svc/daemon.hpp"

#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "dfg/dot.hpp"
#include "svc/slowlog.hpp"

namespace mapzero::svc {

namespace {

/** Fallback poll granularity; the self-pipe wakes instantly. */
constexpr int kAcceptPollMs = 1000;

/** Self-pipe commands. */
constexpr char kWakeDrain = 'd';
constexpr char kWakeStop = 's';

/** The daemon whose signal handlers are installed (at most one). */
std::atomic<int> g_signalWakeFd{-1};

extern "C" void
daemonSignalHandler(int)
{
    // Only async-signal-safe work here: one byte onto the self-pipe;
    // the accept thread translates it into requestDrain().
    const int fd = g_signalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = kWakeDrain;
        (void)!::write(fd, &byte, 1);
    }
}

Gauge &
queueDepthGauge()
{
    static Gauge &gauge = metrics().gauge("svc.queue_depth");
    return gauge;
}

/** Method byte -> Method; nullopt for out-of-range values. */
std::optional<Method>
methodFromWire(std::uint8_t method)
{
    switch (method) {
      case 0: return Method::MapZero;
      case 1: return Method::MapZeroNoMcts;
      case 2: return Method::Ilp;
      case 3: return Method::Sa;
      case 4: return Method::Lisa;
      default: return std::nullopt;
    }
}

/** Reply payload = status byte + body. */
std::string
reply(Status status, std::string_view body = {})
{
    std::string payload;
    payload += static_cast<char>(status);
    payload.append(body.data(), body.size());
    return payload;
}

} // namespace

Daemon::~Daemon()
{
    stop();
}

bool
Daemon::start(const DaemonOptions &options)
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (running_.load())
        return true;
    options_ = options;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("mapzerod: socket() failed");
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        warn("mapzerod: bad bind address " + options.bindAddress);
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        warn(cat("mapzerod: cannot listen on ", options.bindAddress,
                 ":", options.port, " (", std::strerror(errno), ")"));
        ::close(fd);
        return false;
    }
    sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_.store(static_cast<int>(ntohs(bound.sin_port)));
    else
        port_.store(options.port);

    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0) {
        warn("mapzerod: pipe() failed");
        ::close(fd);
        return false;
    }
    wakeReadFd_ = wake[0];
    wakeWriteFd_ = wake[1];
    listenFd_.store(fd);

    service_ = std::make_unique<CompileService>(options_.service);
    sessions_ =
        std::make_unique<SessionTable>(options_.retainTerminal);
    queue_ =
        std::make_unique<BoundedQueue<JobId>>(options_.queueCapacity);
    queueDepthGauge().set(0.0);
    // Publish GET /trace?job=ID: the closure captures the session
    // table raw; lookupDaemonTrace runs it under the install mutex, so
    // the uninstall in shutdown() fences every in-flight scrape.
    setDaemonTraceLookup(
        [table = sessions_.get()](std::uint64_t id)
            -> std::optional<std::string> {
            return table->traceJson(id);
        });

    stopRequested_.store(false);
    drainRequested_.store(false);
    drainComplete_ = false;
    startedAt_ = std::chrono::steady_clock::now();
    running_.store(true);
    setDaemonPhase(DaemonPhase::Serving);

    const std::size_t workers = resolveJobs(
        options_.workers <= 0
            ? 0
            : static_cast<std::size_t>(options_.workers));
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    acceptThread_ = std::thread([this] { acceptLoop(); });

    inform(cat("mapzerod: serving on ", options_.bindAddress, ":",
               port_.load(), " (", workers, " workers, queue ",
               options_.queueCapacity, ")"));
    return true;
}

DaemonPhase
Daemon::phase() const
{
    if (!running_.load())
        return DaemonPhase::Idle;
    return drainRequested_.load() ? DaemonPhase::Draining
                                  : DaemonPhase::Serving;
}

void
Daemon::requestDrain()
{
    if (!running_.load())
        return;
    bool expected = false;
    if (!drainRequested_.compare_exchange_strong(expected, true))
        return;
    setDaemonPhase(DaemonPhase::Draining);
    inform("mapzerod: drain requested; finishing admitted jobs");
    // Refuse new work; workers exit once the backlog is gone.
    queue_->close();
    // Lock-step with run()'s wait so the flag flip cannot slip into
    // the gap between its predicate check and its sleep.
    { std::lock_guard<std::mutex> lock(drainMutex_); }
    drained_.notify_all();
}

std::int64_t
Daemon::run()
{
    {
        std::unique_lock<std::mutex> lock(drainMutex_);
        drained_.wait(lock, [this] {
            return drainRequested_.load() || !running_.load();
        });
    }
    shutdown();
    const SessionTable::Counts counts =
        sessions_ ? sessions_->counts() : SessionTable::Counts{};
    return counts.done + counts.failed + counts.cancelled;
}

void
Daemon::stop()
{
    requestDrain();
    shutdown();
}

void
Daemon::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (!running_.load())
        return;
    // Workers first: they drain every admitted job (the queue is
    // already closed by requestDrain), so nothing is orphaned. The
    // accept thread keeps answering STATUS/FETCH while they finish.
    queue_->close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();

    stopRequested_.store(true);
    const char byte = kWakeStop;
    (void)!::write(wakeWriteFd_, &byte, 1);
    acceptThread_.join();

    if (g_signalWakeFd.load() == wakeWriteFd_)
        g_signalWakeFd.store(-1);
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0)
        ::close(fd);
    ::close(wakeReadFd_);
    ::close(wakeWriteFd_);
    wakeReadFd_ = wakeWriteFd_ = -1;
    running_.store(false);
    port_.store(0);
    setDaemonPhase(DaemonPhase::Idle);
    setDaemonTraceLookup(nullptr);
    const SessionTable::Counts counts = sessions_->counts();
    inform(cat("mapzerod: drained (submitted=", counts.submitted,
               " done=", counts.done, " failed=", counts.failed,
               " cancelled=", counts.cancelled, ")"));
    { std::lock_guard<std::mutex> lock(drainMutex_); }
    drained_.notify_all();
}

void
Daemon::installSignalHandlers()
{
    g_signalWakeFd.store(wakeWriteFd_);
    struct sigaction action = {};
    action.sa_handler = daemonSignalHandler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

// ---------------------------------------------------------- accept side

void
Daemon::acceptLoop()
{
    const int listen_fd = listenFd_.load();
    while (!stopRequested_.load()) {
        pollfd pfds[2] = {};
        pfds[0].fd = listen_fd;
        pfds[0].events = POLLIN;
        pfds[1].fd = wakeReadFd_;
        pfds[1].events = POLLIN;
        const int ready = ::poll(pfds, 2, kAcceptPollMs);
        if (ready <= 0)
            continue;
        if (pfds[1].revents != 0) {
            char byte = 0;
            if (::read(wakeReadFd_, &byte, 1) == 1 &&
                byte == kWakeDrain) {
                requestDrain();
                continue; // keep serving STATUS/FETCH during drain
            }
            break; // kWakeStop (or pipe gone): shutdown() is joining us
        }
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        serveConnection(conn);
        ::close(conn);
    }
}

void
Daemon::serveConnection(int fd)
{
    static Counter &requests = metrics().counter("svc.requests_total");
    Frame request;
    const Deadline deadline(options_.requestTimeoutSeconds);
    const Status read_status = readFrame(fd, request, deadline);
    if (read_status == Status::BadRequest) {
        writeReply(fd, Status::BadRequest, "oversized frame");
        return;
    }
    if (read_status != Status::Ok)
        return; // EOF/timeout: nobody left to answer
    requests.add();
    std::string payload;
    try {
        payload = handle(request);
    } catch (const std::exception &error) {
        // A single bad request must never take the daemon down.
        payload = reply(Status::Error, error.what());
    }
    writeFrame(fd, Op::Reply, payload);
}

std::string
Daemon::handle(const Frame &request)
{
    if (!running_.load())
        return reply(Status::Error, "daemon not running");
    switch (request.op) {
      case Op::Submit: return handleSubmit(request);
      case Op::Status: return handleStatus(request);
      case Op::Fetch:  return handleFetch(request);
      case Op::Cancel: return handleCancel(request);
      case Op::Trace:  return handleTrace(request);
      case Op::Ping:   return handlePing();
      case Op::Drain:
        requestDrain();
        return reply(Status::Ok);
      case Op::Reply:  break;
    }
    return reply(Status::BadRequest, "unknown opcode");
}

std::string
Daemon::handleSubmit(const Frame &request)
{
    static Counter &submitted =
        metrics().counter("svc.submitted_total");
    static Counter &rejected = metrics().counter("svc.rejected_total");

    if (drainRequested_.load())
        return reply(Status::Draining, "daemon is draining");

    SubmitRequest submit;
    if (!decodeSubmit(request.payload, submit))
        return reply(Status::BadRequest, "malformed SUBMIT payload");

    const std::optional<Method> method = methodFromWire(submit.method);
    if (!method)
        return reply(Status::BadRequest, "unknown method byte");
    std::optional<cgra::Architecture> arch =
        cgra::Architecture::byName(submit.archName);
    if (!arch)
        return reply(Status::BadRequest,
                     cat("unknown arch '", submit.archName, "' (",
                         cgra::Architecture::knownNames(), ")"));

    PendingJob job;
    try {
        job.dfg = dfg::fromDot(submit.dfgDot);
    } catch (const std::exception &error) {
        return reply(Status::BadRequest,
                     cat("bad DFG: ", error.what()));
    }
    if (job.dfg.nodeCount() <= 0)
        return reply(Status::BadRequest, "empty DFG");
    job.arch = std::move(*arch);
    job.method = *method;
    job.options.timeLimitSeconds = submit.timeLimitSeconds;
    job.options.seed = submit.seed;
    job.options.restartsPerIi =
        static_cast<std::int32_t>(submit.restartsPerIi);
    job.options.jobs = submit.jobs == 0
        ? 1
        : static_cast<std::int32_t>(submit.jobs);
    job.options.evalCache = submit.evalCache;

    // Admission control. The accept thread is the only producer, so
    // the size check cannot race another submit.
    if (queue_->size() >= queue_->capacity()) {
        rejected.add();
        return reply(Status::Busy,
                     cat("queue full (", queue_->capacity(), ")"));
    }
    const JobId id = sessions_->add(job.dfg.name(), submit.archName,
                                    methodName(job.method));
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        pendingSubmits_.emplace(id, std::move(job));
    }
    if (!queue_->tryPush(id)) {
        // Drain closed the queue between the check and the push.
        {
            std::lock_guard<std::mutex> lock(submitMutex_);
            pendingSubmits_.erase(id);
        }
        sessions_->cancel(id);
        return reply(Status::Draining, "daemon is draining");
    }
    submitted.add();
    queueDepthGauge().set(static_cast<double>(queue_->size()));

    WireWriter body;
    body.u64(id);
    body.u32(static_cast<std::uint32_t>(queue_->size()));
    return reply(Status::Ok, body.bytes());
}

std::string
Daemon::handleStatus(const Frame &request)
{
    WireReader reader(request.payload);
    const JobId id = reader.u64();
    if (!reader.done())
        return reply(Status::BadRequest, "malformed STATUS payload");
    JobSnapshot snapshot;
    if (!sessions_->get(id, snapshot))
        return reply(Status::NotFound, "unknown job id");
    WireWriter body;
    body.u8(static_cast<std::uint8_t>(snapshot.state));
    body.f64(snapshot.queuedSeconds);
    body.f64(snapshot.runSeconds);
    return reply(Status::Ok, body.bytes());
}

std::string
Daemon::handleFetch(const Frame &request)
{
    WireReader reader(request.payload);
    const JobId id = reader.u64();
    if (!reader.done())
        return reply(Status::BadRequest, "malformed FETCH payload");
    JobSnapshot snapshot;
    if (!sessions_->get(id, snapshot))
        return reply(Status::NotFound, "unknown job id");
    if (!jobStateTerminal(snapshot.state)) {
        WireWriter body;
        body.u8(static_cast<std::uint8_t>(snapshot.state));
        return reply(Status::NotReady, body.bytes());
    }
    WireWriter body;
    body.u8(static_cast<std::uint8_t>(snapshot.state));
    body.str(snapshot.result);
    return reply(Status::Ok, body.bytes());
}

std::string
Daemon::handleCancel(const Frame &request)
{
    WireReader reader(request.payload);
    const JobId id = reader.u64();
    if (!reader.done())
        return reply(Status::BadRequest, "malformed CANCEL payload");
    const std::optional<JobState> state = sessions_->cancel(id);
    if (!state)
        return reply(Status::NotFound, "unknown job id");
    WireWriter body;
    body.u8(static_cast<std::uint8_t>(*state));
    return reply(Status::Ok, body.bytes());
}

std::string
Daemon::handleTrace(const Frame &request)
{
    WireReader reader(request.payload);
    const JobId id = reader.u64();
    if (!reader.done())
        return reply(Status::BadRequest, "malformed TRACE payload");
    JobSnapshot snapshot;
    if (!sessions_->get(id, snapshot))
        return reply(Status::NotFound, "unknown job id");
    // Terminal jobs answer with the frozen timeline, live ones with a
    // render of the stages recorded so far (same as GET /trace).
    const std::optional<std::string> timeline = sessions_->traceJson(id);
    WireWriter body;
    body.u8(static_cast<std::uint8_t>(snapshot.state));
    body.str(timeline ? *timeline : "");
    return reply(Status::Ok, body.bytes());
}

std::string
Daemon::handlePing()
{
    WireWriter body;
    body.u8(static_cast<std::uint8_t>(phase()));
    body.u32(static_cast<std::uint32_t>(queue_->size()));
    body.u32(static_cast<std::uint32_t>(workers_.size()));
    body.u64(sessions_->activeCount());
    return reply(Status::Ok, body.bytes());
}

// ---------------------------------------------------------- worker side

void
Daemon::workerLoop(std::size_t index)
{
    static Counter &completed =
        metrics().counter("svc.completed_total");
    static Counter &failed = metrics().counter("svc.failed_total");
    static Counter &cancelled =
        metrics().counter("svc.cancelled_total");
    static Histogram &wait_seconds =
        metrics().histogram("svc.queue_wait_seconds");
    static Histogram &job_seconds =
        metrics().histogram("svc.job_seconds");
    (void)index;

    while (std::optional<JobId> id = queue_->pop()) {
        queueDepthGauge().set(static_cast<double>(queue_->size()));
        PendingJob job;
        {
            std::lock_guard<std::mutex> lock(submitMutex_);
            const auto it = pendingSubmits_.find(*id);
            if (it == pendingSubmits_.end())
                continue;
            job = std::move(it->second);
            pendingSubmits_.erase(it);
        }
        // Cancelled while queued: the session already flipped state.
        if (!sessions_->markRunning(*id))
            continue;
        const std::shared_ptr<std::atomic<bool>> cancel =
            sessions_->cancelFlag(*id);
        // Held as a shared_ptr so the timeline survives even if the
        // record is evicted mid-flight (retainTerminal 0).
        const std::shared_ptr<TraceContext> trace =
            sessions_->trace(*id);
        // The terminal snapshot comes back from finish()/fail(): with
        // retainTerminal 0 the record is evicted inside that call, so
        // a re-get() here would silently skip all the bookkeeping
        // below.
        std::optional<JobSnapshot> terminal;
        // queue_wait spans [submit, first compile stage): armed as a
        // pending stage so the compile's first TraceScope closes it
        // with its own start timestamp. Dispatch setup and service
        // entry (whose cold-start jitter runs to tens of microseconds)
        // are folded into the wait instead of surfacing as an
        // unattributed gap - what keeps sub-millisecond jobs at
        // >= 95% coverage.
        if (trace)
            trace->setPending("queue_wait", 0);
        try {
            const CompileResult result = service_->compile(
                job.dfg, job.arch, job.method, job.options,
                cancel.get(), trace.get());
            std::string result_json;
            {
                // The render stage must close before finish() freezes
                // the timeline, or it would be missing from it.
                TraceBinding bind(trace.get());
                TraceScope stage("render");
                result_json =
                    renderResultJson(job.dfg, job.arch, result);
            }
            terminal = sessions_->finish(*id, std::move(result_json),
                                         result.cancelled);
        } catch (const std::exception &error) {
            terminal = sessions_->fail(*id, error.what());
        }

        if (!terminal)
            continue;
        const JobSnapshot &snapshot = *terminal;
        (snapshot.state == JobState::Done        ? completed
         : snapshot.state == JobState::Cancelled ? cancelled
                                                 : failed)
            .add();
        wait_seconds.record(snapshot.queuedSeconds);
        job_seconds.record(snapshot.queuedSeconds +
                           snapshot.runSeconds);
        SlowlogEntry entry;
        entry.jobId = *id;
        entry.dfgName = snapshot.dfgName;
        entry.archName = snapshot.archName;
        entry.method = snapshot.method;
        entry.seconds = snapshot.runSeconds;
        entry.queuedSeconds = snapshot.queuedSeconds;
        entry.outcome = jobStateName(snapshot.state);
        if (trace) {
            const TraceStageSummary stages = trace->summarizeStages();
            entry.dominantStage = stages.dominantStage;
            entry.stageMs = stages.stageMs;
        }
        entry.uptimeSeconds =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - startedAt_)
                .count();
        Slowlog::global().record(std::move(entry),
                                 options_.slowlogThresholdSeconds);
    }
}

} // namespace mapzero::svc
