/**
 * @file
 * Process-wide daemon state shared with the telemetry server: the
 * lifecycle phase (read by /healthz) and the per-job trace resolver
 * (read by /trace?job=ID).
 *
 * Lives in its own header (not daemon.hpp) because the telemetry
 * server must stay in the base svc library - the daemon itself links
 * the whole compiler stack - so the two can only share link-free
 * state: one atomic and one std::function slot.
 */

#ifndef MAPZERO_SVC_DAEMON_STATE_HPP
#define MAPZERO_SVC_DAEMON_STATE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace mapzero::svc {

/** Lifecycle phase of the in-process mapzerod (Idle = no daemon). */
enum class DaemonPhase : int {
    Idle = 0,
    Serving = 1,
    Draining = 2,
};

namespace detail {
inline std::atomic<int> g_daemonPhase{
    static_cast<int>(DaemonPhase::Idle)};
}

inline DaemonPhase
daemonPhase()
{
    return static_cast<DaemonPhase>(
        detail::g_daemonPhase.load(std::memory_order_relaxed));
}

inline void
setDaemonPhase(DaemonPhase phase)
{
    detail::g_daemonPhase.store(static_cast<int>(phase),
                                std::memory_order_relaxed);
}

/** "idle" | "serving" | "draining" (the /healthz vocabulary). */
inline const char *
daemonPhaseName(DaemonPhase phase)
{
    switch (phase) {
      case DaemonPhase::Idle:     return "idle";
      case DaemonPhase::Serving:  return "serving";
      case DaemonPhase::Draining: return "draining";
    }
    return "unknown";
}

/** Resolves a job id to its timeline JSON (nullopt = unknown job). */
using DaemonTraceLookup =
    std::function<std::optional<std::string>(std::uint64_t)>;

namespace detail {
inline std::mutex g_traceLookupMutex;
inline DaemonTraceLookup g_traceLookup;
} // namespace detail

/**
 * Install (or, with an empty function, uninstall) the resolver behind
 * GET /trace?job=ID. The daemon installs a closure over its session
 * table at start and uninstalls it during shutdown; lookupDaemonTrace
 * runs the resolver under the same mutex, so an uninstall blocks until
 * any in-flight scrape has finished and the closure can never outlive
 * the table it captured.
 */
inline void
setDaemonTraceLookup(DaemonTraceLookup lookup)
{
    std::lock_guard<std::mutex> lock(detail::g_traceLookupMutex);
    detail::g_traceLookup = std::move(lookup);
}

/** The timeline JSON of @p jobId, or nullopt (no daemon/unknown id). */
inline std::optional<std::string>
lookupDaemonTrace(std::uint64_t jobId)
{
    std::lock_guard<std::mutex> lock(detail::g_traceLookupMutex);
    if (!detail::g_traceLookup)
        return std::nullopt;
    return detail::g_traceLookup(jobId);
}

} // namespace mapzero::svc

#endif // MAPZERO_SVC_DAEMON_STATE_HPP
