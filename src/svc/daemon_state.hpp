/**
 * @file
 * Process-wide daemon lifecycle phase, published by mapzerod and read
 * by the telemetry server's /healthz handler.
 *
 * Lives in its own header (not daemon.hpp) because the telemetry
 * server must stay in the base svc library - the daemon itself links
 * the whole compiler stack - and the only thing the two share is this
 * one atomic.
 */

#ifndef MAPZERO_SVC_DAEMON_STATE_HPP
#define MAPZERO_SVC_DAEMON_STATE_HPP

#include <atomic>

namespace mapzero::svc {

/** Lifecycle phase of the in-process mapzerod (Idle = no daemon). */
enum class DaemonPhase : int {
    Idle = 0,
    Serving = 1,
    Draining = 2,
};

namespace detail {
inline std::atomic<int> g_daemonPhase{
    static_cast<int>(DaemonPhase::Idle)};
}

inline DaemonPhase
daemonPhase()
{
    return static_cast<DaemonPhase>(
        detail::g_daemonPhase.load(std::memory_order_relaxed));
}

inline void
setDaemonPhase(DaemonPhase phase)
{
    detail::g_daemonPhase.store(static_cast<int>(phase),
                                std::memory_order_relaxed);
}

/** "idle" | "serving" | "draining" (the /healthz vocabulary). */
inline const char *
daemonPhaseName(DaemonPhase phase)
{
    switch (phase) {
      case DaemonPhase::Idle:     return "idle";
      case DaemonPhase::Serving:  return "serving";
      case DaemonPhase::Draining: return "draining";
    }
    return "unknown";
}

} // namespace mapzero::svc

#endif // MAPZERO_SVC_DAEMON_STATE_HPP
