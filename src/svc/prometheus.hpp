/**
 * @file
 * Prometheus text exposition (format 0.0.4) over a MetricsSnapshot.
 *
 * Internal instrument names are "<subsystem>.<what>" (metrics.hpp);
 * Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so the dots
 * become underscores: "eval_cache.hits" scrapes as "eval_cache_hits".
 * Log-bucketed histograms are rendered the way Prometheus expects
 * histograms: cumulative "_bucket" series with an "le" upper-bound
 * label (the registry's per-bucket counts summed left to right), a
 * final le="+Inf" bucket equal to "_count", plus "_sum" and "_count".
 *
 * Pure rendering over a detached snapshot - no registry access, no
 * locks - so the server can build a scrape response while every hot
 * path keeps recording.
 */

#ifndef MAPZERO_SVC_PROMETHEUS_HPP
#define MAPZERO_SVC_PROMETHEUS_HPP

#include <string>

#include "common/metrics.hpp"

namespace mapzero::svc {

/**
 * Sanitize @p name into a valid Prometheus metric name: every
 * character outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
 * prefixed with '_'.
 */
std::string prometheusName(const std::string &name);

/**
 * Escape @p value for use inside a label value's double quotes
 * (backslash, quote, and newline escapes per the exposition format).
 */
std::string prometheusLabelValue(const std::string &value);

/** Format @p value as an exposition-format number (handles +-Inf/NaN). */
std::string prometheusNumber(double value);

/**
 * Render the whole @p snapshot as exposition text: counters and gauges
 * as single samples, histograms as cumulative bucket series, each
 * preceded by its "# TYPE" line.
 */
std::string renderPrometheus(const MetricsSnapshot &snapshot);

/** The Content-Type a /metrics response must carry. */
inline constexpr const char *kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

} // namespace mapzero::svc

#endif // MAPZERO_SVC_PROMETHEUS_HPP
