#include "svc/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hpp"
#include "common/timer.hpp"

namespace mapzero::svc {

namespace {

/** Connect to host:port; -1 on failure (errno describes why). */
int
connectTo(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

Client::Client(int port, std::string host, double timeoutSeconds)
    : port_(port), host_(std::move(host)),
      timeoutSeconds_(timeoutSeconds)
{
}

Status
Client::roundTrip(Op op, std::string_view payload,
                  std::string &replyBody)
{
    lastError_.clear();
    replyBody.clear();
    const int fd = connectTo(host_, port_);
    if (fd < 0) {
        lastError_ = cat("cannot connect to ", host_, ":", port_,
                         " (", std::strerror(errno), ")");
        return Status::Error;
    }
    if (!writeFrame(fd, op, payload)) {
        lastError_ = "send failed";
        ::close(fd);
        return Status::Error;
    }
    Frame frame;
    const Status read_status =
        readFrame(fd, frame, Deadline(timeoutSeconds_));
    ::close(fd);
    if (read_status != Status::Ok) {
        lastError_ = cat("no reply (", statusName(read_status), ")");
        return Status::Error;
    }
    if (frame.op != Op::Reply || frame.payload.empty()) {
        lastError_ = "malformed reply frame";
        return Status::Error;
    }
    const Status status =
        static_cast<Status>(static_cast<std::uint8_t>(frame.payload[0]));
    replyBody = frame.payload.substr(1);
    if (status != Status::Ok && lastError_.empty())
        lastError_ = replyBody.empty() ? statusName(status) : replyBody;
    return status;
}

Status
Client::submit(const SubmitRequest &request, std::uint64_t &jobId,
               std::uint32_t &queueDepth)
{
    std::string body;
    const Status status =
        roundTrip(Op::Submit, encodeSubmit(request), body);
    if (status != Status::Ok)
        return status;
    WireReader reader(body);
    jobId = reader.u64();
    queueDepth = reader.u32();
    if (!reader.done()) {
        lastError_ = "malformed SUBMIT reply body";
        return Status::Error;
    }
    return Status::Ok;
}

Status
Client::status(std::uint64_t jobId, JobStatus &out)
{
    WireWriter payload;
    payload.u64(jobId);
    std::string body;
    const Status status =
        roundTrip(Op::Status, payload.bytes(), body);
    if (status != Status::Ok)
        return status;
    WireReader reader(body);
    out.state = static_cast<JobState>(reader.u8());
    out.queuedSeconds = reader.f64();
    out.runSeconds = reader.f64();
    if (!reader.done()) {
        lastError_ = "malformed STATUS reply body";
        return Status::Error;
    }
    return Status::Ok;
}

Status
Client::fetch(std::uint64_t jobId, JobResult &out)
{
    WireWriter payload;
    payload.u64(jobId);
    std::string body;
    const Status status = roundTrip(Op::Fetch, payload.bytes(), body);
    if (status != Status::Ok && status != Status::NotReady)
        return status;
    WireReader reader(body);
    out.state = static_cast<JobState>(reader.u8());
    if (status == Status::Ok)
        out.blob = reader.str();
    if (!reader.done()) {
        lastError_ = "malformed FETCH reply body";
        return Status::Error;
    }
    return status;
}

Status
Client::cancel(std::uint64_t jobId, JobState &state)
{
    WireWriter payload;
    payload.u64(jobId);
    std::string body;
    const Status status =
        roundTrip(Op::Cancel, payload.bytes(), body);
    if (status != Status::Ok)
        return status;
    WireReader reader(body);
    state = static_cast<JobState>(reader.u8());
    if (!reader.done()) {
        lastError_ = "malformed CANCEL reply body";
        return Status::Error;
    }
    return Status::Ok;
}

Status
Client::trace(std::uint64_t jobId, JobTrace &out)
{
    WireWriter payload;
    payload.u64(jobId);
    std::string body;
    const Status status = roundTrip(Op::Trace, payload.bytes(), body);
    if (status != Status::Ok)
        return status;
    WireReader reader(body);
    out.state = static_cast<JobState>(reader.u8());
    out.timelineJson = reader.str();
    if (!reader.done()) {
        lastError_ = "malformed TRACE reply body";
        return Status::Error;
    }
    return Status::Ok;
}

Status
Client::drain()
{
    std::string body;
    return roundTrip(Op::Drain, {}, body);
}

Status
Client::ping(DaemonInfo &out)
{
    std::string body;
    const Status status = roundTrip(Op::Ping, {}, body);
    if (status != Status::Ok)
        return status;
    WireReader reader(body);
    out.phase = reader.u8();
    out.queueDepth = reader.u32();
    out.workers = reader.u32();
    out.activeJobs = reader.u64();
    if (!reader.done()) {
        lastError_ = "malformed PING reply body";
        return Status::Error;
    }
    return Status::Ok;
}

std::optional<JobStatus>
Client::waitForJob(std::uint64_t jobId, double timeoutSeconds,
                   double pollSeconds)
{
    const Deadline deadline(timeoutSeconds);
    // Capped exponential backoff: a fixed interval turns N concurrent
    // waiters into a constant N/interval req/s load on the accept
    // thread for the whole compile; backing off to ~1 Hz keeps the
    // fast path fast (first polls are still pollSeconds apart) while
    // long jobs cost each waiter about one request per second.
    constexpr double kBackoffFactor = 1.6;
    constexpr double kMaxPollSeconds = 1.0;
    double interval = pollSeconds > 0.0 ? pollSeconds : 0.05;
    while (true) {
        JobStatus snapshot;
        if (status(jobId, snapshot) != Status::Ok)
            return std::nullopt;
        if (jobStateTerminal(snapshot.state))
            return snapshot;
        if (deadline.expired()) {
            lastError_ = cat("job ", jobId, " still ",
                             jobStateName(snapshot.state), " after ",
                             timeoutSeconds, "s");
            return std::nullopt;
        }
        const double sleep =
            std::min(interval, std::max(deadline.remaining(), 0.001));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep));
        interval = std::min(interval * kBackoffFactor, kMaxPollSeconds);
    }
}

} // namespace mapzero::svc
