/**
 * @file
 * The daemon's session table: one record per submitted compile job,
 * with an explicit state machine
 *
 *     QUEUED -> RUNNING -> DONE | FAILED
 *        \---------------> CANCELLED
 *
 * (a RUNNING job that is cancelled keeps state RUNNING until the
 * worker observes its cancel flag, then finishes as CANCELLED). The
 * table is the single source of truth shared by the accept loop
 * (SUBMIT/STATUS/FETCH/CANCEL handlers) and the worker pool; all
 * transitions happen under one mutex, and each record carries the
 * heap-allocated cancel flag whose address is threaded into the
 * compile's Deadlines, so a CANCEL request reaches a running search
 * without the table lock being held during the compile.
 *
 * Completed records are retained for FETCH and then evicted
 * oldest-first past a retention cap, so a long-lived daemon's table
 * stays bounded no matter how many jobs flow through it.
 */

#ifndef MAPZERO_SVC_SESSION_HPP
#define MAPZERO_SVC_SESSION_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/trace.hpp"

namespace mapzero::svc {

/** Job identifier (1-based; 0 is never issued). */
using JobId = std::uint64_t;

/** Lifecycle states; numeric values are wire-visible (STATUS reply). */
enum class JobState : std::uint8_t {
    Queued = 0,
    Running = 1,
    Done = 2,
    Failed = 3,
    Cancelled = 4,
};

/** Human-readable state name ("QUEUED", ...). */
const char *jobStateName(JobState state);

/** True for DONE/FAILED/CANCELLED. */
bool jobStateTerminal(JobState state);

/** Detached copy of one job's externally visible fields. */
struct JobSnapshot {
    JobId id = 0;
    JobState state = JobState::Queued;
    std::string dfgName;
    std::string archName;
    std::string method;
    /** Seconds spent waiting in the queue (so far, or final). */
    double queuedSeconds = 0.0;
    /** Seconds spent compiling (so far, or final; 0 while queued). */
    double runSeconds = 0.0;
    /** Result JSON (DONE) or error message (FAILED); else empty. */
    std::string result;
    /** Frozen request timeline (TraceContext::timelineJson), rendered
     *  at the terminal transition; empty while the job is live. */
    std::string traceJson;
};

/** Thread-safe job registry; see the file comment. */
class SessionTable
{
  public:
    /**
     * Retain at most @p retainTerminal finished records; 0 means a
     * record is evicted the moment it turns terminal (a FETCH/STATUS
     * of it answers NOT_FOUND - deliberate for fire-and-forget
     * tenants). Every eviction counts `svc.evicted_total`.
     */
    explicit SessionTable(std::size_t retainTerminal = 1024);

    /** Register a new QUEUED job and return its id. */
    JobId add(std::string dfgName, std::string archName,
              std::string method);

    /** Snapshot @p id into @p out; false for unknown ids. */
    bool get(JobId id, JobSnapshot &out) const;

    /**
     * QUEUED -> RUNNING, recording the queue wait. Returns false when
     * the job is not QUEUED anymore (cancelled while waiting) - the
     * worker must then skip it.
     */
    bool markRunning(JobId id);

    /**
     * RUNNING -> DONE (or CANCELLED when @p cancelled). Returns the
     * terminal snapshot, frozen before any eviction - with
     * retainTerminal 0 the record may be gone the instant this
     * returns, so post-completion bookkeeping (counters, slowlog) must
     * use the returned copy, never a fresh get(). nullopt for unknown
     * or already-terminal ids.
     */
    std::optional<JobSnapshot> finish(JobId id, std::string resultJson,
                                      bool cancelled);

    /** RUNNING -> FAILED with @p error; same contract as finish(). */
    std::optional<JobSnapshot> fail(JobId id, std::string error);

    /**
     * Request cancellation. QUEUED jobs flip to CANCELLED right away;
     * RUNNING jobs get their cancel flag raised (the worker completes
     * the transition). Returns the state *after* the call, or nullopt
     * for unknown ids.
     */
    std::optional<JobState> cancel(JobId id);

    /** The job's cancel flag (worker-side; nullptr for unknown ids).
     *  The flag outlives the record's eviction. */
    std::shared_ptr<std::atomic<bool>> cancelFlag(JobId id) const;

    /** The job's trace context, created at add() with id "job-<id>"
     *  (worker-side; nullptr for unknown ids). The context outlives
     *  the record's eviction while the worker holds it. */
    std::shared_ptr<TraceContext> trace(JobId id) const;

    /**
     * The job's timeline JSON: the frozen copy for terminal jobs, a
     * live render for QUEUED/RUNNING ones (queue wait so far appears
     * once the worker picks the job up). nullopt for unknown ids.
     */
    std::optional<std::string> traceJson(JobId id) const;

    /** Jobs currently QUEUED or RUNNING. */
    std::size_t activeCount() const;

    /** Per-state job counts over the whole daemon lifetime. */
    struct Counts {
        std::int64_t submitted = 0;
        std::int64_t done = 0;
        std::int64_t failed = 0;
        std::int64_t cancelled = 0;
    };
    Counts counts() const;

  private:
    struct Record {
        JobSnapshot snapshot;
        std::shared_ptr<std::atomic<bool>> cancel;
        std::shared_ptr<TraceContext> trace;
        std::chrono::steady_clock::time_point submittedAt;
        std::chrono::steady_clock::time_point startedAt;
    };

    void evictLocked();

    const std::size_t retainTerminal_;
    mutable std::mutex mutex_;
    JobId nextId_ = 1;
    std::map<JobId, Record> jobs_;
    /** Terminal ids in completion order (eviction queue). */
    std::deque<JobId> terminalOrder_;
    Counts counts_;
};

} // namespace mapzero::svc

#endif // MAPZERO_SVC_SESSION_HPP
