/**
 * @file
 * Minimal HTTP/1.0 request parsing and response formatting for the
 * telemetry server - the first networked component of the planned
 * `mapzerod` service (ROADMAP open item 1).
 *
 * Scope is deliberately tiny: parse "GET <target> HTTP/1.x" plus the
 * target's query string, and render a complete response with
 * Content-Length and Connection: close. No keep-alive, no chunking, no
 * bodies on requests - a /metrics scrape needs none of that, and every
 * line of a network-facing parser is attack surface the daemon will
 * have to defend later.
 */

#ifndef MAPZERO_SVC_HTTP_HPP
#define MAPZERO_SVC_HTTP_HPP

#include <map>
#include <string>
#include <string_view>

namespace mapzero::svc {

/** One parsed request line. */
struct HttpRequest {
    std::string method;
    /** Raw request target as sent ("/journal?n=50"). */
    std::string target;
    /** Target with the query string stripped ("/journal"). */
    std::string path;
    /** Decoded query parameters ("n" -> "50"). */
    std::map<std::string, std::string> query;
};

/**
 * Parse the request line out of @p raw (a full or partial HTTP request;
 * only the first line is consulted). Returns false on anything
 * malformed - the caller answers 400.
 */
bool parseHttpRequest(std::string_view raw, HttpRequest &out);

/** True once @p raw contains the end-of-headers "\r\n\r\n" marker. */
bool httpHeadersComplete(std::string_view raw);

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpReason(int status);

/**
 * Render a complete HTTP/1.0 response: status line, Content-Type,
 * Content-Length, Connection: close, then @p body.
 */
std::string httpResponse(int status, std::string_view content_type,
                         std::string_view body);

} // namespace mapzero::svc

#endif // MAPZERO_SVC_HTTP_HPP
