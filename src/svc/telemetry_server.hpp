/**
 * @file
 * The live telemetry HTTP server - the seed of the `mapzerod` daemon
 * (ROADMAP open item 1) and the first networked component of the
 * system.
 *
 * Everything observability built so far (run reports, traces, the
 * journal) is post-mortem; this server makes a *running* compile or
 * training wave inspectable: a background accept thread on a loopback
 * socket answers
 *
 *   GET /metrics        Prometheus text exposition of the registry
 *                       (plus fresh proc.* resource gauges)
 *   GET /snapshot.json  registry snapshot + time-series rings as JSON
 *   GET /journal?n=K    tail of the in-memory flight-recorder journal
 *                       (JSONL; K newest records, default 100)
 *   GET /healthz        liveness + build/config info
 *
 * Starting the server also starts the TimeSeriesRecorder so /snapshot
 * has history from second one. Binding is loopback-only by default:
 * this is an operator port, not a public API (the daemon will grow
 * admission control before that changes).
 *
 * Cost model: one blocked accept thread plus the recorder's sampler
 * tick; request handling renders from detached snapshots, so scrapes
 * never stall the search hot paths (< 1% wall-time on
 * bench_searchspace, the DESIGN.md §13 budget).
 */

#ifndef MAPZERO_SVC_TELEMETRY_SERVER_HPP
#define MAPZERO_SVC_TELEMETRY_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "svc/http.hpp"

namespace mapzero::svc {

/** Configuration of one TelemetryServer::start() call. */
struct TelemetryOptions {
    /** TCP port to listen on; 0 = pick an ephemeral port. */
    int port = 0;
    /** Bind address; keep loopback unless you know better. */
    std::string bindAddress = "127.0.0.1";
    /** Time-series sampler period (milliseconds). */
    int samplePeriodMs = 250;
    /**
     * Total budget for reading one request (milliseconds). A client
     * that dribbles bytes or never finishes its headers is answered
     * 400 and closed when this elapses - a stuck peer must not pin
     * the accept thread.
     */
    int requestTimeoutMs = 2000;
};

/**
 * A telemetry endpoint over the process-wide registries.
 *
 * Instantiable for tests; production code uses the process-wide
 * instance (global()) so the CLI, CompileOptions, and TrainerConfig
 * can all idempotently ask for "the" server.
 */
class TelemetryServer
{
  public:
    /** The process-wide instance. */
    static TelemetryServer &global();

    TelemetryServer() = default;
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /**
     * Bind, listen, and spawn the accept thread. Returns true when the
     * server is running afterwards (including "already was"); logs a
     * warn() and returns false when the socket cannot be bound - a
     * telemetry failure must never kill the compile it observes.
     */
    bool start(const TelemetryOptions &options = {});

    /** Close the socket and join the accept thread (idempotent). */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound port (the real one when options.port was 0); 0 when
     *  not running. */
    int port() const { return port_.load(); }

    /** Requests answered so far (any status). */
    std::int64_t requestsServed() const { return requests_.load(); }

    /**
     * Dispatch one parsed request to its route and render the full
     * HTTP response. Public so tests can exercise every route without
     * a socket.
     */
    std::string handle(const HttpRequest &request);

  private:
    void acceptLoop();
    void serveConnection(int fd);

    std::string handleMetrics();
    std::string handleSnapshot();
    std::string handleJournal(const HttpRequest &request);
    std::string handleTrace(const HttpRequest &request);
    std::string handleHealthz();

    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<int> port_{0};
    std::atomic<int> listenFd_{-1};
    /** Self-pipe: stop() writes a byte to wake the accept poll(). */
    int wakeReadFd_ = -1;
    int wakeWriteFd_ = -1;
    std::atomic<std::int64_t> requests_{0};
    std::chrono::steady_clock::time_point startedAt_;
    TelemetryOptions options_;
    std::mutex lifecycleMutex_;
    std::thread acceptThread_;
};

/**
 * Idempotently start the process-wide server when @p stats_port >= 0
 * (0 = ephemeral): the one-liner CompileOptions/TrainerConfig wiring
 * calls. Returns the bound port, or -1 when disabled/failed. The
 * chosen port is inform()ed and printed once, so scripts driving
 * `--stats-port 0` can discover it.
 */
int ensureTelemetryServer(int stats_port);

} // namespace mapzero::svc

#endif // MAPZERO_SVC_TELEMETRY_SERVER_HPP
