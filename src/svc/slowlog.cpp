#include "svc/slowlog.hpp"

#include <sstream>

#include "common/metrics.hpp"

namespace mapzero::svc {

Slowlog &
Slowlog::global()
{
    static Slowlog instance;
    return instance;
}

bool
Slowlog::record(SlowlogEntry entry, double thresholdSeconds)
{
    if (thresholdSeconds <= 0.0 ||
        entry.seconds < thresholdSeconds)
        return false;
    static Counter &entries =
        metrics().counter("svc.slowlog_entries");
    entries.add();
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(entry));
    while (ring_.size() > kCapacity)
        ring_.pop_front();
    return true;
}

std::vector<SlowlogEntry>
Slowlog::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<SlowlogEntry>(ring_.rbegin(), ring_.rend());
}

std::size_t
Slowlog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

void
Slowlog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
}

std::string
Slowlog::toJson() const
{
    const std::vector<SlowlogEntry> newest_first = entries();
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const SlowlogEntry &e : newest_first) {
        os << (first ? "" : ",\n ") << "{\"job_id\": " << e.jobId
           << ", \"dfg\": \"" << jsonEscape(e.dfgName) << "\""
           << ", \"arch\": \"" << jsonEscape(e.archName) << "\""
           << ", \"method\": \"" << jsonEscape(e.method) << "\""
           << ", \"seconds\": " << jsonNumber(e.seconds)
           << ", \"queued_seconds\": " << jsonNumber(e.queuedSeconds)
           << ", \"outcome\": \"" << jsonEscape(e.outcome) << "\""
           << ", \"dominant_stage\": \"" << jsonEscape(e.dominantStage)
           << "\", \"stages\": {";
        bool first_stage = true;
        for (const auto &[stage, ms] : e.stageMs) {
            os << (first_stage ? "" : ", ") << "\"" << jsonEscape(stage)
               << "\": " << jsonNumber(ms);
            first_stage = false;
        }
        os << "}, \"uptime_seconds\": " << jsonNumber(e.uptimeSeconds)
           << "}";
        first = false;
    }
    os << "]\n";
    return os.str();
}

} // namespace mapzero::svc
