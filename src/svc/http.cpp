#include "svc/http.hpp"

#include <sstream>

namespace mapzero::svc {

namespace {

/** Decode %XX escapes and '+' in a query component (best-effort). */
std::string
urlDecode(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < text.size()) {
            const auto hex = [](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                if (h >= 'A' && h <= 'F')
                    return h - 'A' + 10;
                return -1;
            };
            const int hi = hex(text[i + 1]);
            const int lo = hex(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
            } else {
                out += c;
            }
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

bool
httpHeadersComplete(std::string_view raw)
{
    return raw.find("\r\n\r\n") != std::string_view::npos ||
           raw.find("\n\n") != std::string_view::npos;
}

bool
parseHttpRequest(std::string_view raw, HttpRequest &out)
{
    const std::size_t line_end = raw.find_first_of("\r\n");
    std::string_view line =
        line_end == std::string_view::npos ? raw
                                           : raw.substr(0, line_end);

    const std::size_t method_end = line.find(' ');
    if (method_end == std::string_view::npos || method_end == 0)
        return false;
    const std::size_t target_end = line.find(' ', method_end + 1);
    if (target_end == std::string_view::npos ||
        target_end == method_end + 1)
        return false;
    const std::string_view version = line.substr(target_end + 1);
    if (version.rfind("HTTP/", 0) != 0)
        return false;

    out.method = std::string(line.substr(0, method_end));
    out.target = std::string(
        line.substr(method_end + 1, target_end - method_end - 1));
    if (out.target.empty() || out.target[0] != '/')
        return false;

    const std::size_t query_start = out.target.find('?');
    out.path = out.target.substr(0, query_start);
    out.query.clear();
    if (query_start == std::string::npos)
        return true;
    std::string_view query =
        std::string_view(out.target).substr(query_start + 1);
    while (!query.empty()) {
        const std::size_t amp = query.find('&');
        const std::string_view pair = query.substr(0, amp);
        if (!pair.empty()) {
            const std::size_t eq = pair.find('=');
            if (eq == std::string_view::npos)
                out.query[urlDecode(pair)] = "";
            else
                out.query[urlDecode(pair.substr(0, eq))] =
                    urlDecode(pair.substr(eq + 1));
        }
        if (amp == std::string_view::npos)
            break;
        query.remove_prefix(amp + 1);
    }
    return true;
}

const char *
httpReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 500: return "Internal Server Error";
      default:  return "Unknown";
    }
}

std::string
httpResponse(int status, std::string_view content_type,
             std::string_view body)
{
    std::ostringstream os;
    os << "HTTP/1.0 " << status << " " << httpReason(status) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

} // namespace mapzero::svc
