/**
 * @file
 * mapzerod - the long-lived multi-tenant compile service daemon
 * (ROADMAP open item 1, grown from the PR 6 telemetry-server seed).
 *
 * Threading model (DESIGN.md §14): one master accept thread owns the
 * listening socket and the whole control plane - it parses one
 * length-prefixed request per connection (svc/protocol.hpp), answers
 * STATUS/FETCH/CANCEL/PING from the session table, and turns SUBMIT
 * into a job: a session-table record plus an id pushed onto a bounded
 * MPMC queue (common/queue.hpp). A fixed pool of compile workers pops
 * ids and runs the actual mapping through core's CompileService, which
 * keeps the pre-trained networks and one shared eval cache warm across
 * requests. The master thread never compiles; the workers never touch
 * a socket.
 *
 * Admission control: a full queue answers SUBMIT with BUSY immediately
 * (`svc.rejected_total`, `svc.queue_depth`) - backpressure is explicit
 * and cheap, not a timeout. Graceful drain (SIGTERM, SIGINT, or a
 * DRAIN request): the daemon flips to the Draining phase, refuses new
 * SUBMITs with DRAINING, closes the queue, lets the workers finish
 * every already-admitted job (in-flight *and* queued - nothing is
 * orphaned), keeps answering STATUS/FETCH meanwhile, then joins
 * everything and returns from run() so the process can flush its
 * journal/report hooks and exit 0.
 *
 * Requests slower than DaemonOptions::slowlogThresholdSeconds land in
 * the process-wide Slowlog, served by the telemetry server at
 * `GET /slowlog`.
 */

#ifndef MAPZERO_SVC_DAEMON_HPP
#define MAPZERO_SVC_DAEMON_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "core/service.hpp"
#include "svc/daemon_state.hpp"
#include "svc/protocol.hpp"
#include "svc/session.hpp"

namespace mapzero::svc {

/** Configuration of one Daemon::start() call. */
struct DaemonOptions {
    /** TCP port; 0 = ephemeral (printed and readable via port()). */
    int port = 0;
    /** Loopback by default: mapzerod has no authn yet. */
    std::string bindAddress = "127.0.0.1";
    /** Compile workers; 0 = resolveJobs() (hardware threads). */
    std::int32_t workers = 0;
    /** Bounded job-queue capacity (admission-control knob). */
    std::size_t queueCapacity = 64;
    /** Compile-latency slowlog threshold; <= 0 disables. */
    double slowlogThresholdSeconds = 0.5;
    /** Finished jobs retained for FETCH before eviction. */
    std::size_t retainTerminal = 1024;
    /** Per-connection request read budget (seconds). */
    double requestTimeoutSeconds = 5.0;
    /** Warm-cache configuration handed to CompileService. */
    ServiceOptions service;
};

/**
 * The compile server. Instantiable for tests (ephemeral ports, several
 * daemons per process are fine); the `serve` CLI command runs one with
 * installSignalHandlers() so SIGTERM drains it.
 */
class Daemon
{
  public:
    Daemon() = default;
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, listen, spawn the accept thread and the worker pool.
     * Returns false (with a warn()) when the socket cannot be bound.
     */
    bool start(const DaemonOptions &options = {});

    /**
     * Block until the daemon has drained and every thread is joined
     * (i.e. until SIGTERM/DRAIN). Returns the number of jobs that
     * reached a terminal state over the daemon's lifetime.
     */
    std::int64_t run();

    /**
     * Begin graceful drain (idempotent, callable from any thread):
     * refuse new SUBMITs, finish admitted jobs, then shut down.
     */
    void requestDrain();

    /** Hard stop for tests: drain + join synchronously. */
    void stop();

    bool running() const { return running_.load(); }
    int port() const { return port_.load(); }
    DaemonPhase phase() const;

    /**
     * Route one already-parsed request frame and return the reply
     * payload (status byte + body). Public so tests can exercise the
     * control plane without a socket.
     */
    std::string handle(const Frame &request);

    /**
     * Install SIGTERM/SIGINT handlers that drain *this* daemon (the
     * handler only sets a flag and writes a self-pipe byte; at most
     * one daemon per process can own the signals).
     */
    void installSignalHandlers();

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void workerLoop(std::size_t index);

    std::string handleSubmit(const Frame &request);
    std::string handleStatus(const Frame &request);
    std::string handleFetch(const Frame &request);
    std::string handleCancel(const Frame &request);
    std::string handleTrace(const Frame &request);
    std::string handlePing();

    /** Close the listen socket and join accept + workers. */
    void shutdown();

    DaemonOptions options_;
    std::unique_ptr<CompileService> service_;
    std::unique_ptr<SessionTable> sessions_;
    std::unique_ptr<BoundedQueue<JobId>> queue_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> drainRequested_{false};
    std::atomic<int> port_{0};
    std::atomic<int> listenFd_{-1};
    int wakeReadFd_ = -1;
    int wakeWriteFd_ = -1;
    std::chrono::steady_clock::time_point startedAt_;

    std::mutex lifecycleMutex_;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    /** A SUBMIT parsed and validated on the accept thread, waiting
     *  for a worker to pick it up. */
    struct PendingJob {
        dfg::Dfg dfg;
        cgra::Architecture arch = cgra::Architecture::hrea();
        Method method = Method::Sa;
        CompileOptions options;
    };

    /** Admitted jobs not yet picked up (id -> parsed request). */
    std::mutex submitMutex_;
    std::map<JobId, PendingJob> pendingSubmits_;

    std::mutex drainMutex_;
    std::condition_variable drained_;
    bool drainComplete_ = false;
};

} // namespace mapzero::svc

#endif // MAPZERO_SVC_DAEMON_HPP
