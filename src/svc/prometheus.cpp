#include "svc/prometheus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mapzero::svc {

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        const bool valid = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' ||
                           c == ':';
        out += valid ? c : '_';
    }
    if (out.empty())
        return "_";
    if (out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
prometheusLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size() + 4);
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out += c; break;
        }
    }
    return out;
}

std::string
prometheusNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

namespace {

void
renderHistogram(std::ostringstream &os, const std::string &name,
                const HistogramSnapshot &h)
{
    os << "# TYPE " << name << " histogram\n";
    // Cumulative buckets up to the last non-empty one; everything
    // above it is identical to +Inf and adds only noise to a scrape.
    std::size_t last_used = 0;
    bool any = false;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i].count > 0) {
            last_used = i;
            any = true;
        }
    }
    std::int64_t cumulative = 0;
    if (any) {
        for (std::size_t i = 0; i <= last_used; ++i) {
            cumulative += h.buckets[i].count;
            os << name << "_bucket{le=\""
               << prometheusNumber(h.buckets[i].upperBound) << "\"} "
               << cumulative << "\n";
        }
    }
    // The bucket atomics and the total are incremented separately, so
    // a scrape racing record() can see one more bucket than count;
    // keep the exposition internally consistent (+Inf == _count >= any
    // cumulative bucket) by taking the larger of the two reads.
    const std::int64_t total = std::max(cumulative, h.count);
    os << name << "_bucket{le=\"+Inf\"} " << total << "\n";
    os << name << "_sum " << prometheusNumber(h.sum) << "\n";
    os << name << "_count " << total << "\n";
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snapshot)
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " counter\n"
           << prom << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " gauge\n"
           << prom << " " << prometheusNumber(value) << "\n";
    }
    for (const auto &[name, h] : snapshot.histograms)
        renderHistogram(os, prometheusName(name), h);
    return os.str();
}

} // namespace mapzero::svc
