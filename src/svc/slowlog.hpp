/**
 * @file
 * Slowlog: a bounded ring of compile requests that exceeded a latency
 * threshold, in the redis SLOWLOG tradition - the first place an
 * operator looks when tail latency moves.
 *
 * The daemon appends one entry per finished job whose compile time is
 * at or above the configured threshold; the ring keeps the newest
 * kCapacity entries and drops oldest-first. Exposure is through the
 * existing telemetry server (`GET /slowlog` renders the ring as JSON,
 * newest first) plus the `svc.slowlog_entries` counter, so slow-tenant
 * hunting needs no new port or tool.
 */

#ifndef MAPZERO_SVC_SLOWLOG_HPP
#define MAPZERO_SVC_SLOWLOG_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mapzero::svc {

/** One over-threshold request. */
struct SlowlogEntry {
    std::uint64_t jobId = 0;
    std::string dfgName;
    std::string archName;
    std::string method;
    /** End-to-end compile seconds (the thresholded quantity). */
    double seconds = 0.0;
    /** Seconds the job waited in the queue before running. */
    double queuedSeconds = 0.0;
    /** Final state name ("DONE", "FAILED", "CANCELLED"). */
    std::string outcome;
    /** Top-level trace stage that ate the most time ("" when the job
     *  carried no trace), so an outlier entry is self-explaining. */
    std::string dominantStage;
    /** (stage name, aggregate ms) per top-level stage, from the job's
     *  TraceContext::summarizeStages(). */
    std::vector<std::pair<std::string, double>> stageMs;
    /** Daemon uptime seconds at completion (monotonic ordering key). */
    double uptimeSeconds = 0.0;
};

/** Thread-safe bounded ring of SlowlogEntry, newest kept. */
class Slowlog
{
  public:
    static constexpr std::size_t kCapacity = 128;

    /** The process-wide ring the telemetry server renders. */
    static Slowlog &global();

    Slowlog() = default;
    Slowlog(const Slowlog &) = delete;
    Slowlog &operator=(const Slowlog &) = delete;

    /**
     * Record @p entry when entry.seconds >= @p thresholdSeconds
     * (a threshold <= 0 disables the slowlog entirely). Returns
     * whether the entry was kept.
     */
    bool record(SlowlogEntry entry, double thresholdSeconds);

    /** Newest-first copy of the ring. */
    std::vector<SlowlogEntry> entries() const;

    std::size_t size() const;

    /** Drop everything (tests; daemon restart). */
    void clear();

    /** Render entries() as a JSON array (newest first). */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::deque<SlowlogEntry> ring_;
};

} // namespace mapzero::svc

#endif // MAPZERO_SVC_SLOWLOG_HPP
