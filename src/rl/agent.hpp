/**
 * @file
 * The MapZero inference agent (paper §3.6.2).
 *
 * A pre-trained network maps new DFGs online. Placement proceeds as a
 * policy-guided depth-first search with backtracking: at every step the
 * agent tries PEs in descending policy probability; when a placement's
 * operands cannot be routed it is unmapped and the next candidate is
 * tried ("once the PE assignment for a node is found to yield an
 * undesirable reward, we unmap it and allow the agent to perform a
 * different action"). When the quick guided search exhausts its backtrack
 * budget, the agent escalates to full MCTS (§3.5), whose simulations can
 * solve the mapping outright - the §4.7 ablation disables exactly this
 * escalation.
 */

#ifndef MAPZERO_RL_AGENT_HPP
#define MAPZERO_RL_AGENT_HPP

#include <memory>

#include "baselines/mapper_base.hpp"
#include "rl/mcts.hpp"

namespace mapzero::rl {

/** Inference knobs. */
struct AgentConfig {
    /** Run the policy-guided DFS phase at all. */
    bool useGuided = true;
    /** Backtrack budget of the guided DFS phase. */
    std::int64_t guidedBacktrackBudget = 2000000;
    /** Escalate to MCTS when the guided phase fails (§4.7 ablation). */
    bool useMcts = true;
    /** MCTS parameters for the escalation phase. */
    MctsConfig mcts;
    /** Episode restarts allowed in the MCTS phase. */
    std::int32_t mctsRestarts = 8;
    std::uint64_t seed = 7;
};

/** Pre-trained MapZero compiler front end. */
class MapZeroAgent : public baselines::MapperBase
{
  public:
    /**
     * @param net pre-trained network whose policy head matches the
     *        architectures this agent will map (peCount equal)
     * @param config inference knobs
     * @param evaluator optional shared evaluation service (e.g. an
     *        EvalBatcher coalescing several root-parallel agents);
     *        defaults to direct forward passes on @p net. Must wrap
     *        the same network and outlive the agent.
     */
    MapZeroAgent(std::shared_ptr<const MapZeroNet> net,
                 AgentConfig config = {},
                 std::shared_ptr<Evaluator> evaluator = nullptr);

    std::string name() const override { return "MapZero"; }

    baselines::AttemptResult map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                      std::int32_t ii,
                      const Deadline &deadline) override;

    /** Backtracks performed by the most recent map() call (Fig. 9). */
    std::int64_t lastBacktracks() const { return lastBacktracks_; }

  private:
    /** Policy-guided DFS with backtracking; fills @p result on success. */
    bool guidedSearch(mapper::MapEnv &env, const Deadline &deadline,
                      baselines::AttemptResult &result, Rng &rng);

    /** MCTS-driven mapping with restarts. */
    bool mctsSearch(mapper::MapEnv &env, const Deadline &deadline,
                    baselines::AttemptResult &result, Rng &rng);

    void harvest(const mapper::MapEnv &env,
                 baselines::AttemptResult &result) const;

    std::shared_ptr<const MapZeroNet> net_;
    AgentConfig config_;
    std::shared_ptr<Evaluator> evaluator_;
    std::int64_t lastBacktracks_ = 0;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_AGENT_HPP
