#include "rl/mcts.hpp"

#include <algorithm>
#include <cmath>

#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace mapzero::rl {

namespace {

/** Hot-loop instruments, resolved once (see metrics.hpp cost model). */
struct MctsMetrics {
    Counter &simulations = metrics().counter("mcts.simulations");
    Counter &nodes = metrics().counter("mcts.nodes_allocated");
    Counter &netEvals = metrics().counter("mcts.net_evals");
    Counter &solvedSuffixes =
        metrics().counter("mcts.solved_suffix_shortcircuits");
    Counter &moves = metrics().counter("mcts.moves");
    Histogram &netEvalSeconds =
        metrics().histogram("mcts.net_eval_seconds");

    static MctsMetrics &
    get()
    {
        static MctsMetrics instance;
        return instance;
    }
};

/**
 * Flight-recorder record for one move: search health a post-mortem can
 * read back (did visit mass collapse? did simulations reach depth?).
 * Only called when the journal is enabled.
 */
void
emitMoveRecord(const mapper::MapEnv &env, const MctsMoveResult &result)
{
    double entropy = 0.0;
    double max_pi = 0.0;
    std::int32_t support = 0;
    for (const double p : result.pi) {
        if (p <= 0.0)
            continue;
        entropy -= p * std::log(p);
        max_pi = std::max(max_pi, p);
        ++support;
    }
    JournalRecord record("mcts.move");
    record.field("dfg", env.dfg().name())
        .field("ii", env.ii())
        .field("step", env.stepIndex())
        .field("simulations", result.simulations)
        .field("root_value", result.rootValue)
        .field("policy_entropy", entropy)
        .field("best_action", result.bestAction)
        .field("best_visit_share", max_pi)
        .field("support", support)
        .field("interior_visits", result.interiorVisits)
        .field("max_depth", result.maxDepth)
        .field("solved", result.solvedSuffix.has_value());
    journal().emit(std::move(record));
}

} // namespace

/** One state in the search tree. */
struct Mcts::TreeNode {
    struct Edge {
        std::int32_t action = -1;
        double prior = 0.0;
        std::int32_t visits = 0;
        double totalValue = 0.0;
        std::unique_ptr<TreeNode> child;

        double
        meanValue() const
        {
            return visits > 0 ? totalValue / visits : 0.0;
        }
    };

    bool expanded = false;
    bool terminal = false;
    double terminalValue = 0.0;
    std::int32_t totalVisits = 0;
    std::vector<Edge> edges;
};

Mcts::Mcts(const MapZeroNet &net, MctsConfig config)
    : owned_(std::make_unique<DirectEvaluator>(net)),
      eval_(owned_.get()), config_(config)
{}

Mcts::Mcts(Evaluator &evaluator, MctsConfig config)
    : eval_(&evaluator), config_(config)
{}

namespace {

/** Sample a Dirichlet(alpha) vector via normalized Gamma(alpha) draws. */
std::vector<double>
dirichlet(std::size_t k, double alpha, Rng &rng)
{
    std::vector<double> draws(k, 0.0);
    double sum = 0.0;
    for (auto &d : draws) {
        d = rng.gamma(alpha);
        sum += d;
    }
    if (sum <= 0.0)
        return std::vector<double>(k, 1.0 / static_cast<double>(k));
    for (auto &d : draws)
        d /= sum;
    return draws;
}

} // namespace

bool
Mcts::simulate(TreeNode &root, mapper::MapEnv &env, Rng &,
               std::vector<std::int32_t> &solved_path,
               std::int64_t &interior_visits, std::int32_t &max_depth)
{
    struct PathEntry {
        TreeNode *parent;
        TreeNode::Edge *edge;
        double reward;
    };
    std::vector<PathEntry> path;
    std::vector<std::int32_t> actions;
    TreeNode *node = &root;
    double leaf_value = 0.0;
    bool solved = false;

    // --- Selection + expansion ----------------------------------------
    while (true) {
        if (env.done()) {
            node->terminal = true;
            node->terminalValue = env.success()
                ? config_.successBonus
                : 0.0; // routing failures already charged per step
            leaf_value = node->terminalValue;
            if (env.success()) {
                solved = true;
                solved_path = actions;
            }
            break;
        }
        if (!env.done() && env.legalActionCount() == 0) {
            env.noteDeadEnd();
            node->terminal = true;
            node->terminalValue = -config_.deadEndPenalty;
            leaf_value = node->terminalValue;
            break;
        }

        if (!node->expanded) {
            // Evaluate + expand the leaf with network priors.
            MctsMetrics &m = MctsMetrics::get();
            const Observation &obs = obsBuilder_.refresh(env);
            const Timer eval_timer;
            const MapZeroNet::Output out = eval_->evaluate(obs);
            m.netEvals.add();
            m.netEvalSeconds.record(eval_timer.seconds());
            leaf_value = static_cast<double>(out.value.item()) /
                         config_.valueScale;
            for (std::int32_t a = 0;
                 a < static_cast<std::int32_t>(obs.actionMask.size());
                 ++a) {
                if (!obs.actionMask[static_cast<std::size_t>(a)])
                    continue;
                TreeNode::Edge edge;
                edge.action = a;
                edge.prior = std::exp(static_cast<double>(
                    out.logPolicy.tensor()[static_cast<std::size_t>(a)]));
                node->edges.push_back(std::move(edge));
            }
            node->expanded = true;
            break;
        }

        // UCT selection over stored priors/values (Algorithm 1 line 11).
        TreeNode::Edge *best = nullptr;
        double best_score = -std::numeric_limits<double>::infinity();
        const double sqrt_total = std::sqrt(
            static_cast<double>(node->totalVisits + 1));
        for (auto &edge : node->edges) {
            const double q = edge.meanValue() * config_.valueScale;
            const double u = config_.cExplore * edge.prior * sqrt_total /
                             (1.0 + static_cast<double>(edge.visits));
            const double score = q + u;
            if (score > best_score) {
                best_score = score;
                best = &edge;
            }
        }
        if (best == nullptr)
            panic("MCTS: expanded node with no edges");

        const mapper::StepOutcome out = env.step(best->action);
        actions.push_back(best->action);
        path.push_back(PathEntry{node, best, out.reward});
        if (!best->child) {
            best->child = std::make_unique<TreeNode>();
            MctsMetrics::get().nodes.add();
        }
        node = best->child.get();
    }

    // --- Backpropagation ----------------------------------------------
    // Return seen from each traversed edge: rewards after it + leaf
    // value. Every node an edge was selected from — the root AND the
    // interior nodes — bumps its visit total, since that total feeds the
    // sqrt(N) numerator of its children's exploration term; skipping the
    // interior ones would freeze deep exploration at sqrt(0 + 1).
    double suffix = leaf_value;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        suffix += it->reward;
        it->edge->visits += 1;
        it->edge->totalValue += suffix;
        it->parent->totalVisits += 1;
        if (it->parent != &root)
            interior_visits += 1;
    }

    max_depth = std::max(
        max_depth, static_cast<std::int32_t>(actions.size()));

    // Restore the environment.
    for (std::size_t i = 0; i < actions.size(); ++i)
        env.undo();

    return solved;
}

MctsMoveResult
Mcts::runFromCurrent(mapper::MapEnv &env, Rng &rng)
{
    if (env.done())
        panic("MCTS from a finished episode");

    MctsMetrics &m = MctsMetrics::get();
    TraceSpan move_span("mcts.move", "mcts");
    m.moves.add();

    TreeNode root;
    MctsMoveResult result;
    result.pi.assign(
        static_cast<std::size_t>(eval_->network().peCount()), 0.0);

    std::vector<std::int32_t> solved_path;
    for (std::int32_t sim = 0; sim < config_.expansionsPerMove; ++sim) {
        m.simulations.add();
        ++result.simulations;
        if (simulate(root, env, rng, solved_path,
                     result.interiorVisits, result.maxDepth)) {
            result.solvedSuffix = solved_path;
            m.solvedSuffixes.add();
            break;
        }
        // Root noise once the root has been expanded (self-play only).
        if (sim == 0 && config_.noiseFraction > 0.0 &&
            !root.edges.empty()) {
            const auto noise = dirichlet(root.edges.size(),
                                         config_.dirichletAlpha, rng);
            for (std::size_t i = 0; i < root.edges.size(); ++i) {
                root.edges[i].prior =
                    (1.0 - config_.noiseFraction) * root.edges[i].prior +
                    config_.noiseFraction * noise[i];
            }
        }
    }

    std::int32_t total_visits = 0;
    for (const auto &edge : root.edges)
        total_visits += edge.visits;

    if (total_visits == 0) {
        // No simulation got past the root (all immediate terminals);
        // fall back to priors.
        double best_prior = -1.0;
        for (const auto &edge : root.edges) {
            result.pi[static_cast<std::size_t>(edge.action)] = edge.prior;
            if (edge.prior > best_prior) {
                best_prior = edge.prior;
                result.bestAction = edge.action;
            }
        }
        if (journal().enabled())
            emitMoveRecord(env, result);
        return result;
    }

    std::int32_t best_visits = -1;
    double weighted_value = 0.0;
    for (const auto &edge : root.edges) {
        result.pi[static_cast<std::size_t>(edge.action)] =
            static_cast<double>(edge.visits) /
            static_cast<double>(total_visits);
        weighted_value += edge.meanValue() *
                          static_cast<double>(edge.visits) /
                          static_cast<double>(total_visits);
        if (edge.visits > best_visits) {
            best_visits = edge.visits;
            result.bestAction = edge.action;
        }
    }
    result.rootValue = weighted_value * config_.valueScale;
    if (journal().enabled())
        emitMoveRecord(env, result);
    return result;
}

} // namespace mapzero::rl
