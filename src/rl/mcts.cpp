#include "rl/mcts.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/bytecache.hpp"
#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "rl/transposition.hpp"

namespace mapzero::rl {

namespace {

/** Hot-loop instruments, resolved once (see metrics.hpp cost model). */
struct MctsMetrics {
    Counter &simulations = metrics().counter("mcts.simulations");
    Counter &nodes = metrics().counter("mcts.nodes_allocated");
    Counter &netEvals = metrics().counter("mcts.net_evals");
    Counter &solvedSuffixes =
        metrics().counter("mcts.solved_suffix_shortcircuits");
    Counter &moves = metrics().counter("mcts.moves");
    Histogram &netEvalSeconds =
        metrics().histogram("mcts.net_eval_seconds");
    Gauge &treeNodes = metrics().gauge("mcts.tree_nodes");
    Gauge &arenaBytes = metrics().gauge("mcts.arena_bytes");
    Histogram &batchFill = metrics().histogram("mcts.batch_fill");

    static MctsMetrics &
    get()
    {
        static MctsMetrics instance;
        return instance;
    }
};

/**
 * Flight-recorder record for one move: search health a post-mortem can
 * read back (did visit mass collapse? did batching fill? did
 * simulations reach depth?). Only called when the journal is enabled.
 */
void
emitMoveRecord(const mapper::MapEnv &env, const MctsMoveResult &result)
{
    double entropy = 0.0;
    double max_pi = 0.0;
    std::int32_t support = 0;
    for (const double p : result.pi) {
        if (p <= 0.0)
            continue;
        entropy -= p * std::log(p);
        max_pi = std::max(max_pi, p);
        ++support;
    }
    const double fill =
        static_cast<double>(result.netLeaves) /
        static_cast<double>(std::max<std::int32_t>(1, result.netCalls));
    JournalRecord record("mcts.move");
    record.field("dfg", env.dfg().name())
        .field("ii", env.ii())
        .field("step", env.stepIndex())
        .field("simulations", result.simulations)
        .field("root_value", result.rootValue)
        .field("policy_entropy", entropy)
        .field("best_action", result.bestAction)
        .field("best_visit_share", max_pi)
        .field("support", support)
        .field("interior_visits", result.interiorVisits)
        .field("max_depth", result.maxDepth)
        .field("net_calls", result.netCalls)
        .field("net_leaves", result.netLeaves)
        .field("batch_fill", fill)
        .field("tree_nodes", result.treeNodes)
        .field("arena_bytes",
               static_cast<std::int64_t>(result.arenaBytes))
        .field("solved", result.solvedSuffix.has_value());
    journal().emit(std::move(record));
}

/** Sample a Dirichlet(alpha) vector via normalized Gamma(alpha) draws. */
std::vector<double>
dirichlet(std::size_t k, double alpha, Rng &rng)
{
    std::vector<double> draws(k, 0.0);
    double sum = 0.0;
    for (auto &d : draws) {
        d = rng.gamma(alpha);
        sum += d;
    }
    if (sum <= 0.0)
        return std::vector<double>(k, 1.0 / static_cast<double>(k));
    for (auto &d : draws)
        d /= sum;
    return draws;
}

} // namespace

/**
 * Structure-of-arrays tree storage. Nodes and edges are rows in
 * contiguous parallel columns; a node's children form the span
 * [childOffset, childOffset + childCount) of the edge columns.
 * rewind() resets all row counts in O(1) while keeping every column's
 * capacity, so after a warmup move steady-state search allocates
 * nothing.
 */
struct Mcts::Arena {
    static constexpr std::uint32_t kNullNode = 0xffffffffu;
    enum NodeFlag : std::uint8_t {
        kExpanded = 1,
        kTerminal = 2,
        /** Leaf collected into the current wave, evaluation in flight. */
        kPending = 4,
    };

    /// @name Node columns
    /// @{
    std::vector<std::uint8_t> flags;
    std::vector<double> terminalValue;
    std::vector<std::int32_t> totalVisits;
    std::vector<std::int32_t> virtualVisits;
    std::vector<std::uint32_t> childOffset;
    std::vector<std::int32_t> childCount;
    /// @}

    /// @name Edge columns
    /// @{
    std::vector<std::int32_t> edgeAction;
    std::vector<double> edgePrior;
    std::vector<std::int32_t> edgeVisits;
    std::vector<double> edgeValue;
    std::vector<std::int32_t> edgeVloss;
    std::vector<std::uint32_t> edgeChild;
    /** Index into memoPool of the recorded step, -1 until traversed. */
    std::vector<std::int32_t> edgeMemo;
    /// @}

    /** Recorded steps for replay; entries (and their route vectors'
     *  capacity) are reused across rewinds via memoUsed. */
    std::vector<mapper::StepRecord> memoPool;
    std::size_t memoUsed = 0;

    /** One selected edge of a descent. */
    struct PathStep {
        std::uint32_t parent;
        std::uint32_t edge;
        double reward;
    };
    /**
     * Expansion recorded the first time a state was evaluated: the
     * legal actions, their priors (exp of the policy logits, computed
     * once), and the leaf value. Replayed verbatim on re-encounter, so
     * a memoized leaf needs no action mask, no exp(), no observation,
     * and no network call. Aliases the transposition-table entry type
     * so local and shared tiers exchange entries without conversion.
     */
    using EvalMemoEntry = TtExpansion;
    /** A leaf awaiting its (evaluated or memoized) expansion. */
    struct PendingLeaf {
        std::uint32_t node = 0;
        /** Built only on memo miss (the expensive part). */
        Observation obs;
        std::vector<PathStep> path;
        /** Packed absolute action prefix (evalMemo key). */
        std::string key;
        /** Recorded expansion when this state was seen before; the
         *  leaf still occupies its wave slot in collection order, so
         *  a warm memo changes no search decision. */
        const EvalMemoEntry *memo = nullptr;
    };
    /** Descent scratch. */
    std::vector<PathStep> path;
    /** Current wave of distinct leaves. waveUsed of the vector's slots
     *  are live; slots are assigned in place so their heap buffers
     *  (key, path, observation tensors) are reused wave after wave. */
    std::vector<PendingLeaf> wave;
    std::size_t waveUsed = 0;

    PendingLeaf &
    waveSlot()
    {
        if (waveUsed == wave.size())
            wave.emplace_back();
        PendingLeaf &leaf = wave[waveUsed++];
        leaf.memo = nullptr;
        return leaf;
    }

    /**
     * Network-output memo across moves and restarts: the state at a
     * tree node is a pure function of the absolute action prefix (from
     * episode reset), so outputs are keyed by the byte-packed prefix -
     * a far cheaper key than re-building the observation and hashing
     * its canonical encoding the way the cross-process EvalCache must.
     * Keys are prefixed with the environment's process-unique id, so
     * one Mcts can serve several environments without cross-talk.
     * Survives rewind() and is NOT counted in bytes() (the arena
     * no-growth contract covers the tree columns, while the memo
     * legitimately grows with episode coverage, bounded by
     * kEvalMemoMax). Entry references stay valid across inserts
     * (node-based map); the size cap is enforced only between moves
     * so in-wave references never dangle.
     */
    static constexpr std::size_t kEvalMemoMax = std::size_t{1} << 20;
    std::unordered_map<std::string, EvalMemoEntry> evalMemo;
    /**
     * Route memo with the same key scheme and lifetime rules, keyed by
     * the prefix INCLUDING the step's action (i.e. the child state):
     * the routes the router commits for a step are a function of the
     * state it is applied to, so a step first recorded in one move (or
     * episode) replays in any later one, skipping the router search
     * that otherwise re-runs on every first per-move edge traversal.
     */
    std::unordered_map<std::string, mapper::StepRecord> stepMemo;
    /** Key of the descent's current node, extended action by action
     *  (so the leaf key and every step key come for free). */
    std::string keyScratch;

    /** Transposition-key header (DFG hash, arch hash, II), cached per
     *  (environment instance, II) so a move only re-hashes the DFG and
     *  arch when the episode it serves actually changed. */
    std::string ttHeader;
    std::uint64_t ttHeaderInstance = 0;
    std::int32_t ttHeaderIi = -1;
    /** Canonical-key scratch (header + action prefix), reused. */
    std::string ttScratch;

    std::uint32_t
    allocNode()
    {
        const auto id = static_cast<std::uint32_t>(flags.size());
        flags.push_back(0);
        terminalValue.push_back(0.0);
        totalVisits.push_back(0);
        virtualVisits.push_back(0);
        childOffset.push_back(0);
        childCount.push_back(0);
        return id;
    }

    std::uint32_t
    allocEdges(std::int32_t count)
    {
        const auto offset = static_cast<std::uint32_t>(edgeAction.size());
        const auto n = edgeAction.size() + static_cast<std::size_t>(count);
        edgeAction.resize(n, -1);
        edgePrior.resize(n, 0.0);
        edgeVisits.resize(n, 0);
        edgeValue.resize(n, 0.0);
        edgeVloss.resize(n, 0);
        edgeChild.resize(n, kNullNode);
        edgeMemo.resize(n, -1);
        return offset;
    }

    std::int32_t
    allocMemo()
    {
        if (memoUsed == memoPool.size())
            memoPool.emplace_back();
        return static_cast<std::int32_t>(memoUsed++);
    }

    void
    rewind()
    {
        flags.clear();
        terminalValue.clear();
        totalVisits.clear();
        virtualVisits.clear();
        childOffset.clear();
        childCount.clear();
        edgeAction.clear();
        edgePrior.clear();
        edgeVisits.clear();
        edgeValue.clear();
        edgeVloss.clear();
        edgeChild.clear();
        edgeMemo.clear();
        memoUsed = 0;
        path.clear();
        waveUsed = 0;
    }

    std::size_t
    bytes() const
    {
        return flags.capacity() * sizeof(std::uint8_t) +
               terminalValue.capacity() * sizeof(double) +
               totalVisits.capacity() * sizeof(std::int32_t) +
               virtualVisits.capacity() * sizeof(std::int32_t) +
               childOffset.capacity() * sizeof(std::uint32_t) +
               childCount.capacity() * sizeof(std::int32_t) +
               edgeAction.capacity() * sizeof(std::int32_t) +
               edgePrior.capacity() * sizeof(double) +
               edgeVisits.capacity() * sizeof(std::int32_t) +
               edgeValue.capacity() * sizeof(double) +
               edgeVloss.capacity() * sizeof(std::int32_t) +
               edgeChild.capacity() * sizeof(std::uint32_t) +
               edgeMemo.capacity() * sizeof(std::int32_t) +
               memoPool.capacity() * sizeof(mapper::StepRecord);
    }
};

Mcts::Mcts(const MapZeroNet &net, MctsConfig config)
    : owned_(std::make_unique<DirectEvaluator>(net)),
      eval_(owned_.get()), config_(config),
      arena_(std::make_unique<Arena>())
{}

Mcts::Mcts(Evaluator &evaluator, MctsConfig config)
    : eval_(&evaluator), config_(config),
      arena_(std::make_unique<Arena>())
{}

Mcts::~Mcts() = default;

Mcts::ArenaStats
Mcts::arenaStats() const
{
    ArenaStats stats;
    stats.nodeCapacity = arena_->flags.capacity();
    stats.edgeCapacity = arena_->edgeAction.capacity();
    stats.memoCapacity = arena_->memoPool.capacity();
    stats.bytes = arena_->bytes();
    return stats;
}

MctsMoveResult
Mcts::runFromCurrent(mapper::MapEnv &env, Rng &rng)
{
    if (env.done())
        panic("MCTS from a finished episode");

    MctsMetrics &m = MctsMetrics::get();
    TraceSpan move_span("mcts.move", "mcts");
    m.moves.add();

    Arena &ar = *arena_;
    ar.rewind();
    const std::uint32_t root = ar.allocNode();

    // Build the episode's packed memo-key prefix: the environment's
    // process-unique id (so one Mcts can interleave environments
    // without cross-talk) followed by the placements so far in
    // schedule order. Every leaf key extends it with the in-tree
    // action path. The cap is enforced only here, between moves, so
    // in-wave entry references never dangle.
    if (ar.evalMemo.size() >= Arena::kEvalMemoMax)
        ar.evalMemo.clear();
    if (ar.stepMemo.size() >= Arena::kEvalMemoMax)
        ar.stepMemo.clear();
    const auto append_action = [](std::string &key, std::int32_t a) {
        char bytes[sizeof a];
        std::memcpy(bytes, &a, sizeof a);
        key.append(bytes, sizeof a);
    };
    std::string episode_prefix;
    episode_prefix.reserve(
        sizeof(std::uint64_t) +
        static_cast<std::size_t>(env.totalSteps()) * sizeof(std::int32_t));
    {
        const std::uint64_t id = env.instanceId();
        char bytes[sizeof id];
        std::memcpy(bytes, &id, sizeof id);
        episode_prefix.append(bytes, sizeof id);
    }
    for (std::int32_t i = 0; i < env.stepIndex(); ++i) {
        const dfg::NodeId placed =
            env.schedule().order[static_cast<std::size_t>(i)];
        append_action(episode_prefix,
                      env.state().placement(placed).pe);
    }

    // Cross-restart transposition prefix: canonical in (DFG, arch, II,
    // placements-so-far) instead of the env instance, so every
    // portfolio restart derives the same key for the same state. The
    // suffix past episode_prefix (the in-tree action path) is shared
    // verbatim between the local and canonical key schemes.
    TranspositionTable *const tt = config_.transposition.get();
    std::string tt_prefix;
    if (tt != nullptr) {
        if (ar.ttHeaderInstance != env.instanceId() ||
            ar.ttHeaderIi != env.ii()) {
            ar.ttHeaderInstance = env.instanceId();
            ar.ttHeaderIi = env.ii();
            ar.ttHeader.clear();
            const std::uint64_t hashes[2] = {
                byteHash64(env.dfg().canonicalBytes()),
                byteHash64(env.arch().canonicalBytes()),
            };
            ar.ttHeader.append(reinterpret_cast<const char *>(hashes),
                               sizeof hashes);
            append_action(ar.ttHeader, env.ii());
        }
        tt_prefix.assign(ar.ttHeader);
        tt_prefix.append(episode_prefix, sizeof(std::uint64_t),
                         std::string::npos);
    }
    const auto tt_key_of = [&ar, &tt_prefix,
                            prefix_len = episode_prefix.size()](
                               const std::string &local_key)
        -> const std::string & {
        ar.ttScratch.assign(tt_prefix);
        ar.ttScratch.append(local_key, prefix_len, std::string::npos);
        return ar.ttScratch;
    };

    MctsMoveResult result;
    result.pi.assign(
        static_cast<std::size_t>(eval_->network().peCount()), 0.0);

    // Schedule position of the root: depth d of a descent places
    // schedule().order[root_steps + d], which is all noteRouteFailure
    // needs to attribute env-free traversals of failing edges.
    const std::int32_t root_steps = env.stepIndex();

    std::vector<std::int32_t> solved_path;
    bool solved = false;
    bool noise_pending = config_.noiseFraction > 0.0;
    const std::int32_t budget = config_.expansionsPerMove;
    const std::int32_t leaf_batch =
        std::max<std::int32_t>(1, config_.leafBatch);

    // Descents are env-free wherever step records exist: rewards and
    // episode-end flags come from the recorded outcomes, so the
    // environment is only materialized where its state is truly needed
    // (a leaf that must build an observation or record a dead end, an
    // edge the router has never searched, the success check at a
    // completed mapping). env_path is the edge sequence currently
    // applied to the environment; sync_env brings it to the first
    // @p depth steps of the descent path by undoing past the common
    // prefix and replaying recorded steps forward.
    std::vector<std::uint32_t> env_path;
    const auto sync_env = [&](std::size_t depth) {
        std::size_t common = 0;
        while (common < env_path.size() && common < depth &&
               env_path[common] == ar.path[common].edge)
            ++common;
        while (env_path.size() > common) {
            env.undo();
            env_path.pop_back();
        }
        for (std::size_t j = common; j < depth; ++j) {
            const std::uint32_t e = ar.path[j].edge;
            env.stepReplay(ar.edgeAction[e],
                           ar.memoPool[static_cast<std::size_t>(
                               ar.edgeMemo[e])]);
            env_path.push_back(e);
        }
    };

    // Revert the virtual losses a descent applied (no real update).
    const auto revert_virtual =
        [&ar](const std::vector<Arena::PathStep> &path) {
            for (const auto &step : path) {
                --ar.edgeVloss[step.edge];
                --ar.virtualVisits[step.parent];
            }
        };

    // Real backup: return seen from each traversed edge (rewards after
    // it + leaf value). Every node an edge was selected from - the root
    // AND the interior nodes - bumps its visit total, since that total
    // feeds the sqrt(N) numerator of its children's exploration term;
    // skipping the interior ones would freeze deep exploration at
    // sqrt(0 + 1). The descent's virtual losses are reverted here.
    const auto backprop = [&ar, root, &result](
                              const std::vector<Arena::PathStep> &path,
                              double leaf_value) {
        double suffix = leaf_value;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
            suffix += it->reward;
            ++ar.edgeVisits[it->edge];
            ar.edgeValue[it->edge] += suffix;
            --ar.edgeVloss[it->edge];
            ++ar.totalVisits[it->parent];
            --ar.virtualVisits[it->parent];
            if (it->parent != root)
                ++result.interiorVisits;
        }
    };

    const auto note_depth = [&result](std::size_t depth) {
        result.maxDepth = std::max(result.maxDepth,
                                   static_cast<std::int32_t>(depth));
    };

    enum class Descent { Terminal, Pending, Duplicate, Solved };

    // Carve @p nodeId's child span from the edge arena and flip the
    // node pending -> expanded; the caller fills edgeAction/edgePrior
    // over [returned offset, offset + count). The single place the
    // expansion invariants live, shared by the fresh-evaluation and
    // memo-replay paths.
    const auto open_children = [&ar](std::uint32_t nodeId,
                                     std::int32_t count) {
        const std::uint32_t offset = ar.allocEdges(count);
        ar.childOffset[nodeId] = offset;
        ar.childCount[nodeId] = count;
        ar.flags[nodeId] = static_cast<std::uint8_t>(
            (ar.flags[nodeId] & ~Arena::kPending) | Arena::kExpanded);
        return offset;
    };

    // Give @p nodeId its child edges from @p logits (one float per PE,
    // legal actions only). Fresh-evaluation path; memo hits replay the
    // recorded (action, prior) span verbatim instead, which is the
    // same arithmetic because the priors were stored post-exp().
    const auto expand_node = [&](std::uint32_t nodeId,
                                 const std::vector<bool> &mask,
                                 const float *logits) {
        std::int32_t count = 0;
        for (const bool legal : mask)
            count += legal ? 1 : 0;
        std::uint32_t e = open_children(nodeId, count);
        for (std::int32_t a = 0;
             a < static_cast<std::int32_t>(mask.size()); ++a) {
            if (!mask[static_cast<std::size_t>(a)])
                continue;
            ar.edgeAction[e] = a;
            ar.edgePrior[e] = std::exp(static_cast<double>(
                logits[static_cast<std::size_t>(a)]));
            ++e;
        }
    };

    // One virtual-loss descent: selection down to a leaf. Terminal
    // leaves (known value, no network needed) are backed up in place
    // and count a simulation immediately; fresh leaves join the wave
    // under a pending flag; reaching a pending leaf again means the
    // tree is exhausted of distinct leaves for this wave.
    const auto descend = [&]() -> Descent {
        ar.path.clear();
        // Invariant: keyScratch is the packed absolute action prefix
        // of `node` at every loop head (extended as edges are taken).
        ar.keyScratch.assign(episode_prefix);
        std::uint32_t node = root;
        // Recorded outcome.done of the edge that reached `node`
        // (the env may be elsewhere; runFromCurrent panics when the
        // root itself is a finished episode).
        bool arrived_done = false;
        while (true) {
            if (ar.flags[node] & Arena::kTerminal) {
                // Cached terminal. A dead end is terminal for the
                // search but not for the environment; re-record the
                // failure attribution exactly as the per-visit search
                // did, so post-mortem magnitudes are unchanged.
                if (!arrived_done) {
                    sync_env(ar.path.size());
                    env.noteDeadEnd();
                }
                backprop(ar.path, ar.terminalValue[node]);
                ++result.simulations;
                m.simulations.add();
                note_depth(ar.path.size());
                return Descent::Terminal;
            }
            if (arrived_done) {
                ar.flags[node] |= Arena::kTerminal;
                sync_env(ar.path.size());
                const bool success = env.success();
                ar.terminalValue[node] =
                    success ? config_.successBonus
                            : 0.0; // route failures charged per step
                if (success) {
                    solved_path.clear();
                    for (const auto &step : ar.path)
                        solved_path.push_back(ar.edgeAction[step.edge]);
                }
                backprop(ar.path, ar.terminalValue[node]);
                ++result.simulations;
                m.simulations.add();
                note_depth(ar.path.size());
                return success ? Descent::Solved : Descent::Terminal;
            }
            if (ar.flags[node] & Arena::kPending) {
                // Same leaf twice in one wave: virtual loss could not
                // divert us anywhere new. Evaluate what we have.
                revert_virtual(ar.path);
                return Descent::Duplicate;
            }
            if (!(ar.flags[node] & Arena::kExpanded)) {
                // Fresh leaf, keyed by its absolute action prefix.
                // Seen before (earlier move or restart): carry the
                // recorded expansion into the wave - no action mask,
                // no observation build, no network call, not even an
                // environment state (only states with legal actions
                // are ever memoized, so the dead-end check is implied
                // by a hit). Either way the leaf joins the wave in
                // collection order under virtual loss, so a warm memo
                // changes no search decision and repeated searches
                // retrace (and keep hitting) the same states.
                auto hit = ar.evalMemo.find(ar.keyScratch);
                if (hit == ar.evalMemo.end() && tt != nullptr) {
                    // Shared-tier consult; a hit is copied into the
                    // local memo so this restart never re-fetches it
                    // (and the pointer stored on the leaf stays valid:
                    // the map is node-based).
                    TtExpansion fetched;
                    if (tt->lookupEval(tt_key_of(ar.keyScratch),
                                       fetched)) {
                        traceCountAdd(TraceCount::TtEvalHits, 1);
                        hit = ar.evalMemo
                                  .emplace(ar.keyScratch,
                                           std::move(fetched))
                                  .first;
                    }
                }
                if (hit == ar.evalMemo.end()) {
                    sync_env(ar.path.size());
                    if (env.legalActionCount() == 0) {
                        env.noteDeadEnd();
                        ar.flags[node] |= Arena::kTerminal;
                        ar.terminalValue[node] = -config_.deadEndPenalty;
                        backprop(ar.path, ar.terminalValue[node]);
                        ++result.simulations;
                        m.simulations.add();
                        note_depth(ar.path.size());
                        return Descent::Terminal;
                    }
                }
                ar.flags[node] |= Arena::kPending;
                Arena::PendingLeaf &leaf = ar.waveSlot();
                leaf.node = node;
                leaf.path = ar.path;
                leaf.key = ar.keyScratch;
                if (hit != ar.evalMemo.end()) {
                    leaf.memo = &hit->second;
                } else {
                    // Copy the observation (the builder's buffer is
                    // invalidated by the next refresh).
                    leaf.obs = obsBuilder_.refresh(env);
                }
                note_depth(ar.path.size());
                return Descent::Pending;
            }

            // UCT selection over stored priors/values (Algorithm 1
            // line 11), with in-flight edges discounted by virtual
            // loss. Strict > keeps the lowest edge (= lowest action)
            // index on ties, independent of wave size, which is what
            // makes leafBatch a pure throughput knob.
            const double sqrt_total =
                std::sqrt(static_cast<double>(ar.totalVisits[node] +
                                              ar.virtualVisits[node] + 1));
            const std::uint32_t begin = ar.childOffset[node];
            const std::uint32_t end =
                begin + static_cast<std::uint32_t>(ar.childCount[node]);
            std::uint32_t best = Arena::kNullNode;
            double best_score =
                -std::numeric_limits<double>::infinity();
            for (std::uint32_t e = begin; e < end; ++e) {
                const std::int32_t n_eff =
                    ar.edgeVisits[e] + ar.edgeVloss[e];
                const double w_eff =
                    ar.edgeValue[e] - static_cast<double>(ar.edgeVloss[e]) *
                                          config_.virtualLossValue;
                const double q =
                    (n_eff > 0 ? w_eff / static_cast<double>(n_eff)
                               : 0.0) *
                    config_.valueScale;
                const double u = config_.cExplore * ar.edgePrior[e] *
                                 sqrt_total /
                                 (1.0 + static_cast<double>(n_eff));
                const double score = q + u;
                if (score > best_score) {
                    best_score = score;
                    best = e;
                }
            }
            if (best == Arena::kNullNode)
                panic("MCTS: expanded node with no edges");

            // Take the edge. The reward and episode-end flag come from
            // the step record - recorded earlier this move, in the
            // cross-move route memo, or (only for a route the router
            // has never searched under this prefix) by materializing
            // the environment and stepping it for real.
            const std::int32_t action = ar.edgeAction[best];
            append_action(ar.keyScratch, action);
            std::int32_t memo = ar.edgeMemo[best];
            bool failure_recorded = false;
            if (memo < 0) {
                memo = ar.allocMemo();
                ar.edgeMemo[best] = memo;
                mapper::StepRecord &rec =
                    ar.memoPool[static_cast<std::size_t>(memo)];
                const auto known = ar.stepMemo.find(ar.keyScratch);
                if (known != ar.stepMemo.end()) {
                    rec = known->second;
                } else if (tt != nullptr &&
                           tt->lookupStep(tt_key_of(ar.keyScratch),
                                          rec)) {
                    // Another restart already routed this edge; replay
                    // its verdict (failure attribution below, exactly
                    // as for a local memo hit).
                    traceCountAdd(TraceCount::TtStepHits, 1);
                    ar.stepMemo.emplace(ar.keyScratch, rec);
                } else {
                    sync_env(ar.path.size());
                    env.step(action, rec); // records any route failure
                    failure_recorded = true;
                    env_path.push_back(best);
                    ar.stepMemo.emplace(ar.keyScratch, rec);
                    if (tt != nullptr)
                        tt->insertStep(tt_key_of(ar.keyScratch), rec);
                }
            }
            const mapper::StepOutcome &out =
                ar.memoPool[static_cast<std::size_t>(memo)].outcome;
            // The seed engine re-stepped every traversal, charging a
            // failing route once per visit; replayed/memoized
            // traversals keep those magnitudes via the attribution
            // hook (see MapEnv::noteRouteFailure).
            if (!out.routedOk && !failure_recorded) {
                env.noteRouteFailure(
                    root_steps +
                        static_cast<std::int32_t>(ar.path.size()),
                    action);
            }

            ar.path.push_back(Arena::PathStep{node, best, out.reward});
            ++ar.edgeVloss[best];
            ++ar.virtualVisits[node];
            if (ar.edgeChild[best] == Arena::kNullNode) {
                ar.edgeChild[best] = ar.allocNode();
                m.nodes.add();
            }
            node = ar.edgeChild[best];
            arrived_done = out.done;
        }
    };

    while (!solved && result.simulations < budget) {
        // --- Collect a wave of distinct leaves under virtual loss ----
        ar.waveUsed = 0;
        while (static_cast<std::int32_t>(ar.waveUsed) < leaf_batch &&
               result.simulations +
                       static_cast<std::int32_t>(ar.waveUsed) <
                   budget) {
            const Descent r = descend();
            if (r == Descent::Solved) {
                solved = true;
                break;
            }
            if (r == Descent::Duplicate)
                break;
        }

        // --- One network call for the wave's unmemoized leaves -------
        if (ar.waveUsed != 0 && !solved) {
            std::vector<const Observation *> wave_obs;
            wave_obs.reserve(ar.waveUsed);
            for (std::size_t i = 0; i < ar.waveUsed; ++i) {
                if (ar.wave[i].memo == nullptr)
                    wave_obs.push_back(&ar.wave[i].obs);
            }
            std::vector<MapZeroNet::Output> outs;
            if (!wave_obs.empty()) {
                const Timer eval_timer;
                outs = eval_->evaluateBatch(wave_obs);
                m.netEvalSeconds.record(eval_timer.seconds());
                m.netEvals.add(
                    static_cast<std::int64_t>(wave_obs.size()));
                m.batchFill.record(
                    static_cast<double>(wave_obs.size()));
                traceCountAdd(TraceCount::MctsWaves, 1);
                traceCountAdd(
                    TraceCount::MctsLeaves,
                    static_cast<std::int64_t>(wave_obs.size()));
                ++result.netCalls;
                result.netLeaves +=
                    static_cast<std::int32_t>(wave_obs.size());
            }

            // Expand + back up in collection order - identical
            // arithmetic whether a leaf's expansion came from the
            // batch or the memo (the memo stores the post-exp()
            // priors verbatim).
            std::size_t miss = 0;
            for (std::size_t i = 0; i < ar.waveUsed; ++i) {
                const Arena::PendingLeaf &leaf = ar.wave[i];
                float value = 0.0f;
                if (leaf.memo != nullptr) {
                    const Arena::EvalMemoEntry &entry = *leaf.memo;
                    value = entry.value;
                    const std::uint32_t offset = open_children(
                        leaf.node,
                        static_cast<std::int32_t>(entry.actions.size()));
                    for (std::size_t j = 0; j < entry.actions.size();
                         ++j) {
                        ar.edgeAction[offset + j] = entry.actions[j];
                        ar.edgePrior[offset + j] = entry.priors[j];
                    }
                } else {
                    const nn::Tensor &t = outs[miss].logPolicy.tensor();
                    value = outs[miss].value.item();
                    ++miss;
                    expand_node(leaf.node, leaf.obs.actionMask,
                                t.data().data());
                    // Record the expansion (pre-noise: root noise is
                    // applied after this block) for future moves and
                    // restarts.
                    Arena::EvalMemoEntry &entry = ar.evalMemo[leaf.key];
                    if (entry.actions.empty()) {
                        const std::uint32_t off =
                            ar.childOffset[leaf.node];
                        const auto cnt = static_cast<std::size_t>(
                            ar.childCount[leaf.node]);
                        entry.actions.assign(
                            ar.edgeAction.begin() + off,
                            ar.edgeAction.begin() + off + cnt);
                        entry.priors.assign(
                            ar.edgePrior.begin() + off,
                            ar.edgePrior.begin() + off + cnt);
                        entry.value = value;
                        if (tt != nullptr)
                            tt->insertEval(tt_key_of(leaf.key), entry);
                    }
                }
                backprop(leaf.path,
                         static_cast<double>(value) / config_.valueScale);
                ++result.simulations;
                m.simulations.add();
            }
        }

        // Root noise once the root has been expanded (self-play only).
        if (noise_pending && (ar.flags[root] & Arena::kExpanded)) {
            noise_pending = false;
            const auto k =
                static_cast<std::size_t>(ar.childCount[root]);
            if (k > 0) {
                const auto noise =
                    dirichlet(k, config_.dirichletAlpha, rng);
                const std::uint32_t off = ar.childOffset[root];
                for (std::size_t i = 0; i < k; ++i) {
                    ar.edgePrior[off + i] =
                        (1.0 - config_.noiseFraction) *
                            ar.edgePrior[off + i] +
                        config_.noiseFraction * noise[i];
                }
            }
        }
    }
    // Hand the environment back exactly as we received it.
    sync_env(0);
    traceCountAdd(TraceCount::MctsSimulations, result.simulations);

    if (solved) {
        result.solvedSuffix = solved_path;
        m.solvedSuffixes.add();
    }

    result.treeNodes = static_cast<std::int32_t>(ar.flags.size());
    result.arenaBytes = ar.bytes();
    m.treeNodes.set(static_cast<double>(result.treeNodes));
    m.arenaBytes.set(static_cast<double>(result.arenaBytes));

    // --- Move result off the root edge span --------------------------
    const std::uint32_t begin = ar.childOffset[root];
    const std::uint32_t end =
        begin + static_cast<std::uint32_t>(ar.childCount[root]);
    std::int64_t total_visits = 0;
    for (std::uint32_t e = begin; e < end; ++e)
        total_visits += ar.edgeVisits[e];

    if (total_visits == 0) {
        // No simulation got past the root (all immediate terminals);
        // fall back to priors.
        double best_prior = -1.0;
        for (std::uint32_t e = begin; e < end; ++e) {
            result.pi[static_cast<std::size_t>(ar.edgeAction[e])] =
                ar.edgePrior[e];
            if (ar.edgePrior[e] > best_prior) {
                best_prior = ar.edgePrior[e];
                result.bestAction = ar.edgeAction[e];
            }
        }
        if (journal().enabled())
            emitMoveRecord(env, result);
        return result;
    }

    std::int32_t best_visits = -1;
    double weighted_value = 0.0;
    for (std::uint32_t e = begin; e < end; ++e) {
        const double share = static_cast<double>(ar.edgeVisits[e]) /
                             static_cast<double>(total_visits);
        result.pi[static_cast<std::size_t>(ar.edgeAction[e])] = share;
        if (ar.edgeVisits[e] > 0)
            weighted_value +=
                ar.edgeValue[e] /
                static_cast<double>(ar.edgeVisits[e]) * share;
        if (ar.edgeVisits[e] > best_visits) {
            best_visits = ar.edgeVisits[e];
            result.bestAction = ar.edgeAction[e];
        }
    }
    result.rootValue = weighted_value * config_.valueScale;
    if (journal().enabled())
        emitMoveRecord(env, result);
    return result;
}

} // namespace mapzero::rl
