#include "rl/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "nn/autograd.hpp"

namespace mapzero::rl {

namespace {

void
appendBytes(std::string &s, const void *p, std::size_t n)
{
    s.append(static_cast<const char *>(p), n);
}

void
appendU64(std::string &s, std::uint64_t v)
{
    appendBytes(s, &v, sizeof(v));
}

void
appendTensor(std::string &s, const nn::Tensor &t)
{
    appendU64(s, t.rows());
    appendU64(s, t.cols());
    appendBytes(s, t.data().data(), t.size() * sizeof(float));
}

void
appendEdges(std::string &s, const nn::EdgeList &edges)
{
    appendU64(s, edges.size());
    for (const auto &[src, dst] : edges) {
        appendBytes(s, &src, sizeof(src));
        appendBytes(s, &dst, sizeof(dst));
    }
}

/** Output deep-copied onto plain heap tensors (never arena-backed). */
MapZeroNet::Output
detachedCopy(const MapZeroNet::Output &out)
{
    MapZeroNet::Output plain;
    plain.logPolicy =
        nn::Value::constant(nn::Tensor(out.logPolicy.tensor()));
    plain.value = nn::Value::constant(nn::Tensor(out.value.tensor()));
    return plain;
}

} // namespace

EvalCache::EvalCache(std::size_t capacity) : cache_(capacity) {}

std::string
EvalCache::keyOf(const Observation &obs)
{
    std::string key;
    key.reserve((obs.dfgFeatures.size() + obs.cgraFeatures.size() +
                 obs.metadata.size()) *
                    sizeof(float) +
                (obs.dfgEdges.size() + obs.cgraEdges.size()) * 8 +
                obs.actionMask.size() + 64);
    appendTensor(key, obs.dfgFeatures);
    appendEdges(key, obs.dfgEdges);
    appendTensor(key, obs.cgraFeatures);
    appendEdges(key, obs.cgraEdges);
    appendTensor(key, obs.metadata);
    appendU64(key, obs.actionMask.size());
    for (bool legal : obs.actionMask)
        key.push_back(legal ? '\1' : '\0');
    appendU64(key, obs.archSignature);
    return key;
}

bool
EvalCache::lookup(const std::string &key, MapZeroNet::Output &out)
{
    static Counter &hits = metrics().counter("eval_cache.hits");
    static Counter &misses = metrics().counter("eval_cache.misses");
    static Counter &shard_hits = metrics().counter("cache.shard_hits");
    static Counter &shard_misses =
        metrics().counter("cache.shard_misses");

    // Per-request attribution: lookups happen on the requesting
    // thread, so the hit lands in that thread's open attempt stage.
    if (!cache_.lookup(key, out)) {
        misses.add();
        shard_misses.add();
        traceCountAdd(TraceCount::EvalCacheMisses, 1);
        return false;
    }
    hits.add();
    shard_hits.add();
    traceCountAdd(TraceCount::EvalCacheHits, 1);
    return true;
}

void
EvalCache::insert(const std::string &key, const MapZeroNet::Output &out)
{
    static Gauge &size_gauge = metrics().gauge("eval_cache.size");
    static Gauge &capacity_gauge =
        metrics().gauge("eval_cache.capacity");
    static Counter &evictions =
        metrics().counter("eval_cache.evictions");

    capacity_gauge.set(static_cast<double>(cache_.capacity()));
    const auto result = cache_.insert(key, detachedCopy(out));
    if (result.evicted > 0)
        evictions.add(static_cast<std::int64_t>(result.evicted));
    if (result.inserted || result.evicted > 0)
        size_gauge.set(static_cast<double>(cache_.size()));
}

MapZeroNet::Output
DirectEvaluator::evaluate(const Observation &obs)
{
    if (!cache_) {
        nn::InferenceGuard guard;
        return net_->forward(obs);
    }
    const std::string key = EvalCache::keyOf(obs);
    MapZeroNet::Output out;
    if (cache_->lookup(key, out))
        return out;
    {
        nn::InferenceGuard guard;
        out = net_->forward(obs);
    }
    cache_->insert(key, out);
    return out;
}

std::vector<MapZeroNet::Output>
Evaluator::evaluateBatch(const std::vector<const Observation *> &batch)
{
    std::vector<MapZeroNet::Output> outs;
    outs.reserve(batch.size());
    for (const Observation *obs : batch)
        outs.push_back(evaluate(*obs));
    return outs;
}

std::vector<double>
Evaluator::policyProbabilities(const Observation &obs)
{
    const MapZeroNet::Output out = evaluate(obs);
    const auto pe_count =
        static_cast<std::size_t>(network().peCount());
    std::vector<double> probs(pe_count, 0.0);
    for (std::size_t a = 0; a < pe_count; ++a) {
        if (obs.actionMask[a])
            probs[a] =
                std::exp(static_cast<double>(out.logPolicy.tensor()[a]));
    }
    return probs;
}

EvalBatcher::EvalBatcher(const MapZeroNet &net, std::size_t max_batch,
                         std::shared_ptr<EvalCache> cache)
    : net_(&net), maxBatch_(std::max<std::size_t>(max_batch, 1)),
      cache_(std::move(cache))
{}

EvalBatcher::Session::Session(EvalBatcher &batcher) : batcher_(&batcher)
{
    batcher_->addSession();
}

EvalBatcher::Session::~Session()
{
    batcher_->removeSession();
}

void
EvalBatcher::addSession()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++sessions_;
}

void
EvalBatcher::removeSession()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --sessions_;
    }
    // A departing session can complete the flush condition for the
    // remaining parked requests; wake them so one takes the lead.
    wake_.notify_all();
}

bool
EvalBatcher::readyLocked() const
{
    if (pending_.empty())
        return false;
    if (pending_.size() >= maxBatch_)
        return true;
    // Every live session is blocked inside evaluate()/evaluateBatch():
    // nobody else is coming, evaluate what we have.
    return blocked_ >= sessions_;
}

void
EvalBatcher::runBatch(std::unique_lock<std::mutex> &lock)
{
    static Counter &batches = metrics().counter("eval_batcher.batches");
    static Histogram &batch_size =
        metrics().histogram("eval_batcher.batch_size");
    static Counter &full_batches =
        metrics().counter("eval_batcher.full_batches");
    static Counter &partial_batches =
        metrics().counter("eval_batcher.partial_batches");

    const std::size_t take = std::min(pending_.size(), maxBatch_);
    std::vector<Request *> batch(pending_.begin(),
                                 pending_.begin() +
                                     static_cast<std::ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    lock.unlock();

    std::vector<const Observation *> observations;
    observations.reserve(batch.size());
    for (const Request *request : batch)
        observations.push_back(request->obs);
    std::vector<MapZeroNet::Output> outputs;
    std::exception_ptr error;
    try {
        {
            nn::InferenceGuard guard;
            outputs = net_->forwardBatch(observations);
        }
        batches.add();
        batch_size.record(static_cast<double>(batch.size()));
        (take == maxBatch_ ? full_batches : partial_batches).add();
        // Leader attribution: the thread that runs the forward pass
        // books the batch against its own attempt stage, even when
        // the batch also serves parked peer restarts (documented in
        // DESIGN.md - per-job batch counts are a lower bound).
        traceCountAdd(TraceCount::EvalBatches, 1);
    } catch (...) {
        // Deliver the failure to every request in the batch; each
        // waiter (and the leader itself) rethrows from evaluate().
        error = std::current_exception();
    }

    if (!error && cache_) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            cache_->insert(batch[i]->key, outputs[i]);
    }

    lock.lock();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (error)
            batch[i]->error = error;
        else
            batch[i]->out = std::move(outputs[i]);
        batch[i]->done = true;
    }
    wake_.notify_all();
}

MapZeroNet::Output
EvalBatcher::evaluate(const Observation &obs)
{
    std::vector<MapZeroNet::Output> outs = evaluateBatch({&obs});
    return std::move(outs.front());
}

std::vector<MapZeroNet::Output>
EvalBatcher::evaluateBatch(const std::vector<const Observation *> &batch)
{
    static Counter &requests = metrics().counter("eval_batcher.requests");
    static Histogram &queue_wait =
        metrics().histogram("eval_batcher.queue_wait_seconds");

    requests.add(static_cast<std::int64_t>(batch.size()));
    const Timer wait_timer;

    std::vector<MapZeroNet::Output> outs(batch.size());
    std::vector<Request> misses;
    misses.reserve(batch.size());
    std::vector<std::size_t> miss_pos;
    miss_pos.reserve(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i) {
        // A hit never parks, so this thread behaves exactly like one
        // that is still computing between requests - the flush
        // condition (blocked sessions >= live sessions) is unaffected
        // and nobody ends up waiting on a peer that already returned.
        std::string key;
        if (cache_) {
            key = EvalCache::keyOf(*batch[i]);
            if (cache_->lookup(key, outs[i]))
                continue;
        }
        misses.emplace_back();
        misses.back().obs = batch[i];
        misses.back().key = std::move(key);
        miss_pos.push_back(i);
    }
    if (misses.empty())
        return outs;

    std::unique_lock<std::mutex> lock(mutex_);
    for (Request &request : misses)
        pending_.push_back(&request);
    ++blocked_;
    // The wave may span several forward passes (more misses than the
    // batch cap, or peers filling batches first); keep leading or
    // waiting until every one of OUR requests is served.
    const auto all_done = [&misses] {
        for (const Request &request : misses)
            if (!request.done)
                return false;
        return true;
    };
    while (!all_done()) {
        if (readyLocked()) {
            // This thread completes a batch: lead the evaluation
            // (which serves our own requests along the way).
            runBatch(lock);
            continue;
        }
        wake_.wait(lock);
    }
    --blocked_;
    lock.unlock();

    queue_wait.record(wait_timer.seconds());
    for (const Request &request : misses)
        if (request.error)
            std::rethrow_exception(request.error);
    for (std::size_t i = 0; i < misses.size(); ++i)
        outs[miss_pos[i]] = std::move(misses[i].out);
    return outs;
}

} // namespace mapzero::rl
