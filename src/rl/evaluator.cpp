#include "rl/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"

namespace mapzero::rl {

std::vector<double>
Evaluator::policyProbabilities(const Observation &obs)
{
    const MapZeroNet::Output out = evaluate(obs);
    const auto pe_count =
        static_cast<std::size_t>(network().peCount());
    std::vector<double> probs(pe_count, 0.0);
    for (std::size_t a = 0; a < pe_count; ++a) {
        if (obs.actionMask[a])
            probs[a] =
                std::exp(static_cast<double>(out.logPolicy.tensor()[a]));
    }
    return probs;
}

EvalBatcher::EvalBatcher(const MapZeroNet &net, std::size_t max_batch)
    : net_(&net), maxBatch_(std::max<std::size_t>(max_batch, 1))
{}

EvalBatcher::Session::Session(EvalBatcher &batcher) : batcher_(&batcher)
{
    batcher_->addSession();
}

EvalBatcher::Session::~Session()
{
    batcher_->removeSession();
}

void
EvalBatcher::addSession()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++sessions_;
}

void
EvalBatcher::removeSession()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --sessions_;
    }
    // A departing session can complete the flush condition for the
    // remaining parked requests; wake them so one takes the lead.
    wake_.notify_all();
}

bool
EvalBatcher::readyLocked() const
{
    if (pending_.empty())
        return false;
    if (pending_.size() >= maxBatch_)
        return true;
    // Every live session is either parked here or being served by an
    // in-flight batch: nobody else is coming, evaluate what we have.
    return pending_.size() + inFlight_ >= sessions_;
}

void
EvalBatcher::runBatch(std::unique_lock<std::mutex> &lock)
{
    static Counter &batches = metrics().counter("eval_batcher.batches");
    static Histogram &batch_size =
        metrics().histogram("eval_batcher.batch_size");

    const std::size_t take = std::min(pending_.size(), maxBatch_);
    std::vector<Request *> batch(pending_.begin(),
                                 pending_.begin() +
                                     static_cast<std::ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    inFlight_ += batch.size();
    lock.unlock();

    std::vector<const Observation *> observations;
    observations.reserve(batch.size());
    for (const Request *request : batch)
        observations.push_back(request->obs);
    std::vector<MapZeroNet::Output> outputs;
    std::exception_ptr error;
    try {
        outputs = net_->forwardBatch(observations);
        batches.add();
        batch_size.record(static_cast<double>(batch.size()));
    } catch (...) {
        // Deliver the failure to every request in the batch; each
        // waiter (and the leader itself) rethrows from evaluate().
        error = std::current_exception();
    }

    lock.lock();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (error)
            batch[i]->error = error;
        else
            batch[i]->out = std::move(outputs[i]);
        batch[i]->done = true;
    }
    inFlight_ -= batch.size();
    wake_.notify_all();
}

MapZeroNet::Output
EvalBatcher::evaluate(const Observation &obs)
{
    static Counter &requests = metrics().counter("eval_batcher.requests");
    static Histogram &queue_wait =
        metrics().histogram("eval_batcher.queue_wait_seconds");

    requests.add();
    const Timer wait_timer;
    Request request;
    request.obs = &obs;

    std::unique_lock<std::mutex> lock(mutex_);
    pending_.push_back(&request);
    while (!request.done) {
        if (readyLocked()) {
            // This thread completes the batch: lead the evaluation
            // (which serves our own request along the way).
            runBatch(lock);
            continue;
        }
        wake_.wait(lock);
    }
    queue_wait.record(wait_timer.seconds());
    if (request.error)
        std::rethrow_exception(request.error);
    return std::move(request.out);
}

} // namespace mapzero::rl
