/**
 * @file
 * Cross-restart MCTS transposition table.
 *
 * A portfolio compile runs several independently-seeded MCTS restarts
 * over the SAME (DFG, arch, II) episode. Each restart's arena keeps
 * local memos keyed by its environment instance (see mcts.cpp), so
 * restart k re-evaluates and re-routes every state restart j already
 * expanded. This table lifts those memos to a canonical key -
 * (DFG hash, arch hash, II, absolute action prefix) - shared by every
 * restart of one compile, so the first restart to reach a state pays
 * for its network evaluation and router search and the others replay
 * the recorded result.
 *
 * Safety: the state of an episode is a pure function of that canonical
 * tuple, and both stored payloads (the post-exp() expansion priors +
 * leaf value, and the router's committed step record) are deterministic
 * functions of the state. A hit is therefore bit-identical to the
 * computation it replaces: sharing changes which restart pays, never
 * what any restart computes (the jobs=1 ≡ jobs=N contract holds; only
 * timing decides which restart publishes first).
 *
 * Storage is two ShardedByteCache planes (expansions and step records)
 * so concurrent restarts mostly touch different shards. Entries are
 * LRU-evicted per shard; an evicted state is simply recomputed.
 *
 * Publishes "cache.tt_hits" / "cache.tt_misses" / "cache.tt_inserts".
 */

#ifndef MAPZERO_RL_TRANSPOSITION_HPP
#define MAPZERO_RL_TRANSPOSITION_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytecache.hpp"
#include "mapper/environment.hpp"

namespace mapzero::rl {

/**
 * One recorded expansion: the legal actions of a state, their priors
 * (exp of the policy logits, stored post-exp and pre-root-noise), and
 * the network's leaf value. Also the arena-local memo entry type in
 * mcts.cpp, so local and shared tiers exchange entries without
 * conversion.
 */
struct TtExpansion {
    std::vector<std::int32_t> actions;
    std::vector<double> priors;
    float value = 0.0f;
};

/** Thread-safe shared memo of expansions and step records. */
class TranspositionTable
{
  public:
    /** @param capacityPerPlane LRU capacity of each plane */
    explicit TranspositionTable(
        std::size_t capacityPerPlane = kDefaultCapacity);

    bool lookupEval(const std::string &key, TtExpansion &out);
    void insertEval(const std::string &key, const TtExpansion &entry);

    bool lookupStep(const std::string &key, mapper::StepRecord &out);
    void insertStep(const std::string &key,
                    const mapper::StepRecord &record);

    std::size_t evalEntries() const { return evals_.size(); }
    std::size_t stepEntries() const { return steps_.size(); }

    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  private:
    ShardedByteCache<TtExpansion> evals_;
    ShardedByteCache<mapper::StepRecord> steps_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_TRANSPOSITION_HPP
