#include "rl/transposition.hpp"

#include "common/metrics.hpp"

namespace mapzero::rl {

namespace {

/** Hot-loop instruments, resolved once (see metrics.hpp cost model). */
struct TtMetrics {
    Counter &hits = metrics().counter("cache.tt_hits");
    Counter &misses = metrics().counter("cache.tt_misses");
    Counter &inserts = metrics().counter("cache.tt_inserts");
    Counter &evictions = metrics().counter("cache.tt_evictions");

    static TtMetrics &
    get()
    {
        static TtMetrics instance;
        return instance;
    }
};

} // namespace

TranspositionTable::TranspositionTable(std::size_t capacityPerPlane)
    : evals_(capacityPerPlane), steps_(capacityPerPlane)
{}

bool
TranspositionTable::lookupEval(const std::string &key, TtExpansion &out)
{
    TtMetrics &m = TtMetrics::get();
    if (!evals_.lookup(key, out)) {
        m.misses.add();
        return false;
    }
    m.hits.add();
    return true;
}

void
TranspositionTable::insertEval(const std::string &key,
                               const TtExpansion &entry)
{
    TtMetrics &m = TtMetrics::get();
    const auto result = evals_.insert(key, entry);
    if (result.inserted)
        m.inserts.add();
    if (result.evicted > 0)
        m.evictions.add(static_cast<std::int64_t>(result.evicted));
}

bool
TranspositionTable::lookupStep(const std::string &key,
                               mapper::StepRecord &out)
{
    TtMetrics &m = TtMetrics::get();
    if (!steps_.lookup(key, out)) {
        m.misses.add();
        return false;
    }
    m.hits.add();
    return true;
}

void
TranspositionTable::insertStep(const std::string &key,
                               const mapper::StepRecord &record)
{
    TtMetrics &m = TtMetrics::get();
    const auto result = steps_.insert(key, record);
    if (result.inserted)
        m.inserts.add();
    if (result.evicted > 0)
        m.evictions.add(static_cast<std::int64_t>(result.evicted));
}

} // namespace mapzero::rl
