/**
 * @file
 * Feature extraction: the observation the network consumes.
 *
 * Exactly the paper's encoding (§3.2.1-3.2.2):
 *
 *  DFG node, 10 dims: (1) id, (2) scheduling order, (3) scheduled time
 *  slice, (4) scheduled modulo time slice, (5) in-degree, (6) out-degree,
 *  (7) opcode, (8) has self-cycle, (9) number of DFG nodes in the same
 *  modulo slice, (10) id of the assigned PE.
 *
 *  CGRA PE, 7 dims: (1) id, (2) in-degree, (3) out-degree, (4-6) booleans
 *  for logical / arithmetic / memory capability, (7) id of the mapped DFG
 *  node - taken from the modulo time slice of the node being placed
 *  ("the CGRA hardware of each modulo time slice has a separate graph
 *  representation").
 *
 * All quantities are normalized to [0, 1]-ish ranges for stable training;
 * "unassigned" ids map to 0 via the (x+1)/(max+1) convention.
 */

#ifndef MAPZERO_RL_FEATURES_HPP
#define MAPZERO_RL_FEATURES_HPP

#include <cstdint>
#include <vector>

#include "mapper/environment.hpp"
#include "nn/gat.hpp"
#include "nn/tensor.hpp"

namespace mapzero::rl {

/** Width of a DFG node feature vector (§3.2.1). */
constexpr std::size_t kDfgFeatureDim = 10;
/** Width of a CGRA PE feature vector (§3.2.2). */
constexpr std::size_t kCgraFeatureDim = 7;
/** Metadata: the current node's id + its feature row + progress. */
constexpr std::size_t kMetadataDim = kDfgFeatureDim + 2;

/** Everything the network sees at one decision point. */
struct Observation {
    nn::Tensor dfgFeatures;   ///< N x kDfgFeatureDim
    nn::EdgeList dfgEdges;    ///< DFG dependencies (src, dst)
    nn::Tensor cgraFeatures;  ///< P x kCgraFeatureDim
    nn::EdgeList cgraEdges;   ///< fabric links (src, dst)
    nn::Tensor metadata;      ///< 1 x kMetadataDim
    std::vector<bool> actionMask; ///< legality per PE
    /**
     * Hash of Architecture::canonicalBytes(). Not a network input -
     * cache-key material only. The tensors above almost determine the
     * fabric (per-PE capabilities, the link list), but properties like
     * the row-shared memory bus affect mapping legality without
     * appearing in any feature, so two distinct fabrics could otherwise
     * produce byte-identical observations at the same decision point.
     */
    std::uint64_t archSignature = 0;
};

/** Build the observation for the environment's current decision. */
Observation observe(const mapper::MapEnv &env);

/**
 * Incremental observation construction for tight search loops.
 *
 * A step/undo between two decision points of the same environment can
 * only change four things in the observation: the DFG placement column,
 * the CGRA occupancy column of the (new) current node's modulo slice,
 * the metadata row, and the action mask. refresh() patches exactly
 * those over a cached observation instead of re-deriving schedule
 * orders, degrees, capabilities, and both edge lists every time, and is
 * bit-identical to observe(env).
 *
 * The builder rebinds automatically when handed a different environment
 * (detected via MapEnv::instanceId, so address reuse is safe) or a
 * different II. Not thread-safe; give each search worker its own.
 */
class ObservationBuilder
{
  public:
    /**
     * Observation for @p env's current decision point. The returned
     * reference lives until the next refresh() on this builder.
     */
    const Observation &refresh(const mapper::MapEnv &env);

  private:
    /** Full rebuild of the static (per-environment) parts. */
    void rebuild(const mapper::MapEnv &env);

    const mapper::MapEnv *env_ = nullptr;
    std::uint64_t envInstance_ = 0;
    std::int32_t ii_ = -1;
    Observation obs_;
};

/**
 * Symmetry augmentation (§3.6.1): remap every PE reference in
 * @p obs (CGRA rows, assigned-PE features, action mask) through the fabric
 * automorphism @p perm. The link set is invariant by definition of an
 * automorphism, so the edges stay as they are.
 */
Observation permuteObservation(const Observation &obs,
                               const std::vector<cgra::PeId> &perm);

} // namespace mapzero::rl

#endif // MAPZERO_RL_FEATURES_HPP
