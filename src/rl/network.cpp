#include "rl/network.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::rl {

MapZeroNet::MapZeroNet(std::int32_t pe_count, NetworkConfig config,
                       Rng &rng)
    : peCount_(pe_count), config_(config)
{
    dfgEncoder_ = std::make_unique<nn::GatEncoder>(
        kDfgFeatureDim, config.gatHiddenPerHead, config.gatHeads,
        config.gatLayers, rng);
    cgraEncoder_ = std::make_unique<nn::GatEncoder>(
        kCgraFeatureDim, config.gatHiddenPerHead, config.gatHeads,
        config.gatLayers, rng);
    metaFc_ = std::make_unique<nn::Linear>(kMetadataDim,
                                           config.metaEmbed, rng);
    const std::size_t joint = dfgEncoder_->outWidth() +
                              cgraEncoder_->outWidth() +
                              config.metaEmbed;
    trunk_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{joint, config.stateDim},
        nn::Activation::ReLU, nn::Activation::ReLU, rng);
    policyHead_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{config.stateDim, config.policyHidden,
                                 static_cast<std::size_t>(pe_count)},
        nn::Activation::ReLU, nn::Activation::None, rng);
    valueHead_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{config.stateDim, config.valueHidden, 1},
        nn::Activation::ReLU, nn::Activation::None, rng);

    registerChild("dfg_encoder", dfgEncoder_.get());
    registerChild("cgra_encoder", cgraEncoder_.get());
    registerChild("meta_fc", metaFc_.get());
    registerChild("trunk", trunk_.get());
    registerChild("policy_head", policyHead_.get());
    registerChild("value_head", valueHead_.get());
}

MapZeroNet::Output
MapZeroNet::forward(const Observation &obs) const
{
    if (static_cast<std::int32_t>(obs.actionMask.size()) != peCount_)
        panic(cat("observation has ", obs.actionMask.size(),
                  " actions, network expects ", peCount_));

    const nn::Value dfg_embed = dfgEncoder_->encodeGraph(
        nn::Value::constant(obs.dfgFeatures), obs.dfgEdges);
    const nn::Value cgra_embed = cgraEncoder_->encodeGraph(
        nn::Value::constant(obs.cgraFeatures), obs.cgraEdges);
    const nn::Value meta_embed = nn::relu(
        metaFc_->forward(nn::Value::constant(obs.metadata)));

    const nn::Value joint =
        nn::concatCols({dfg_embed, cgra_embed, meta_embed});
    const nn::Value state = trunk_->forward(joint);

    Output out;
    out.logPolicy = nn::logSoftmaxMasked(policyHead_->forward(state),
                                         obs.actionMask);
    out.value = valueHead_->forward(state);
    return out;
}

std::vector<double>
MapZeroNet::policyProbabilities(const Observation &obs) const
{
    const Output out = forward(obs);
    std::vector<double> probs(static_cast<std::size_t>(peCount_), 0.0);
    for (std::int32_t a = 0; a < peCount_; ++a) {
        if (obs.actionMask[static_cast<std::size_t>(a)])
            probs[static_cast<std::size_t>(a)] = std::exp(
                static_cast<double>(out.logPolicy.tensor()[
                    static_cast<std::size_t>(a)]));
    }
    return probs;
}

} // namespace mapzero::rl
