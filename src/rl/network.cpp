#include "rl/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::rl {

MapZeroNet::MapZeroNet(std::int32_t pe_count, NetworkConfig config,
                       Rng &rng)
    : peCount_(pe_count), config_(config)
{
    dfgEncoder_ = std::make_unique<nn::GatEncoder>(
        kDfgFeatureDim, config.gatHiddenPerHead, config.gatHeads,
        config.gatLayers, rng);
    cgraEncoder_ = std::make_unique<nn::GatEncoder>(
        kCgraFeatureDim, config.gatHiddenPerHead, config.gatHeads,
        config.gatLayers, rng);
    metaFc_ = std::make_unique<nn::Linear>(kMetadataDim,
                                           config.metaEmbed, rng);
    const std::size_t joint = dfgEncoder_->outWidth() +
                              cgraEncoder_->outWidth() +
                              config.metaEmbed;
    trunk_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{joint, config.stateDim},
        nn::Activation::ReLU, nn::Activation::ReLU, rng);
    policyHead_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{config.stateDim, config.policyHidden,
                                 static_cast<std::size_t>(pe_count)},
        nn::Activation::ReLU, nn::Activation::None, rng);
    valueHead_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{config.stateDim, config.valueHidden, 1},
        nn::Activation::ReLU, nn::Activation::None, rng);

    registerChild("dfg_encoder", dfgEncoder_.get());
    registerChild("cgra_encoder", cgraEncoder_.get());
    registerChild("meta_fc", metaFc_.get());
    registerChild("trunk", trunk_.get());
    registerChild("policy_head", policyHead_.get());
    registerChild("value_head", valueHead_.get());
}

MapZeroNet::Output
MapZeroNet::forward(const Observation &obs) const
{
    return std::move(forwardBatch({&obs}).front());
}

namespace {

/** Disjoint union of per-observation graphs plus its pooling matrix. */
struct StackedGraphs {
    nn::Tensor features; ///< (sum N_i) x featureDim
    nn::EdgeList edges;  ///< per-graph edges with row offsets applied
    nn::Tensor pool;     ///< B x (sum N_i); row i holds 1/N_i on block i
};

/**
 * Stack one graph per observation into a disjoint union. @p select
 * picks the (features, edges) pair of one observation.
 */
StackedGraphs
stackGraphs(const std::vector<const rl::Observation *> &batch,
            const nn::Tensor &(*features)(const rl::Observation &),
            const nn::EdgeList &(*edges)(const rl::Observation &))
{
    std::size_t total_rows = 0;
    std::size_t total_edges = 0;
    const std::size_t width = features(*batch.front()).cols();
    for (const rl::Observation *obs : batch) {
        total_rows += features(*obs).rows();
        total_edges += edges(*obs).size();
    }

    StackedGraphs out;
    std::vector<float> data;
    data.reserve(total_rows * width);
    out.edges.reserve(total_edges);
    out.pool = nn::Tensor(batch.size(), total_rows);

    std::size_t offset = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const nn::Tensor &feats = features(*batch[i]);
        if (feats.cols() != width)
            panic(cat("forwardBatch: feature width ", feats.cols(),
                      " != ", width, " at batch index ", i));
        data.insert(data.end(), feats.data().begin(),
                    feats.data().end());
        const auto base = static_cast<std::int32_t>(offset);
        for (const auto &[s, d] : edges(*batch[i]))
            out.edges.emplace_back(s + base, d + base);
        const float inv =
            1.0f / static_cast<float>(std::max<std::size_t>(
                       feats.rows(), 1));
        for (std::size_t r = 0; r < feats.rows(); ++r)
            out.pool.at(i, offset + r) = inv;
        offset += feats.rows();
    }
    out.features = nn::Tensor(total_rows, width, std::move(data));
    return out;
}

const nn::Tensor &dfgFeaturesOf(const rl::Observation &o) { return o.dfgFeatures; }
const nn::EdgeList &dfgEdgesOf(const rl::Observation &o) { return o.dfgEdges; }
const nn::Tensor &cgraFeaturesOf(const rl::Observation &o) { return o.cgraFeatures; }
const nn::EdgeList &cgraEdgesOf(const rl::Observation &o) { return o.cgraEdges; }

} // namespace

std::vector<MapZeroNet::Output>
MapZeroNet::forwardBatch(
    const std::vector<const Observation *> &batch) const
{
    if (batch.empty())
        return {};
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i] == nullptr)
            panic(cat("forwardBatch: null observation at index ", i));
        if (static_cast<std::int32_t>(batch[i]->actionMask.size()) !=
            peCount_)
            panic(cat("observation has ", batch[i]->actionMask.size(),
                      " actions, network expects ", peCount_));
    }

    const StackedGraphs dfg =
        stackGraphs(batch, dfgFeaturesOf, dfgEdgesOf);
    const StackedGraphs cgra =
        stackGraphs(batch, cgraFeaturesOf, cgraEdgesOf);

    // One GAT pass per encoder over the whole union, then a pooling
    // matmul yields the (B x width) per-graph embeddings.
    const nn::Value dfg_embed = nn::matmul(
        nn::Value::constant(dfg.pool),
        dfgEncoder_->encodeNodes(nn::Value::constant(dfg.features),
                                 dfg.edges));
    const nn::Value cgra_embed = nn::matmul(
        nn::Value::constant(cgra.pool),
        cgraEncoder_->encodeNodes(nn::Value::constant(cgra.features),
                                  cgra.edges));

    // Metadata rows stack into one (B x kMetadataDim) matrix.
    nn::Tensor meta(batch.size(), kMetadataDim);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const nn::Tensor &row = batch[i]->metadata;
        for (std::size_t c = 0; c < kMetadataDim; ++c)
            meta.at(i, c) = row[c];
    }
    const nn::Value meta_embed =
        nn::relu(metaFc_->forward(nn::Value::constant(meta)));

    const nn::Value joint =
        nn::concatCols({dfg_embed, cgra_embed, meta_embed});
    const nn::Value state = trunk_->forward(joint);
    const nn::Value logits = policyHead_->forward(state);  // B x P
    const nn::Value values = valueHead_->forward(state);   // B x 1

    std::vector<Output> outputs;
    outputs.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::vector<std::int32_t> row = {
            static_cast<std::int32_t>(i)};
        Output out;
        out.logPolicy = nn::logSoftmaxMasked(nn::gatherRows(logits, row),
                                             batch[i]->actionMask);
        out.value = nn::gatherRows(values, row);
        outputs.push_back(std::move(out));
    }
    return outputs;
}

std::vector<double>
MapZeroNet::policyProbabilities(const Observation &obs) const
{
    // Pure inference: no caller ever differentiates through this.
    const nn::InferenceGuard guard;
    const Output out = forward(obs);
    std::vector<double> probs(static_cast<std::size_t>(peCount_), 0.0);
    for (std::int32_t a = 0; a < peCount_; ++a) {
        if (obs.actionMask[static_cast<std::size_t>(a)])
            probs[static_cast<std::size_t>(a)] = std::exp(
                static_cast<double>(out.logPolicy.tensor()[
                    static_cast<std::size_t>(a)]));
    }
    return probs;
}

} // namespace mapzero::rl
