#include "rl/agent.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace mapzero::rl {

namespace {

/**
 * Routability lower bound for placing @p node on @p pe: on single-hop
 * fabrics a value advances at most one link per cycle, so an incident
 * edge whose placed endpoint sits farther (in link hops) than the
 * schedule slack can never be routed. The paper's agent learns this
 * reachability relation from the GAT embeddings (§2.5.2); the explicit
 * bound lets a lightly-trained agent prune the same dead branches.
 * Also returns the mean distance to placed producers for the locality
 * bias.
 */
bool
placementRoutable(const mapper::MapEnv &env, const cgra::Mrrg &mrrg,
                  dfg::NodeId node, cgra::PeId pe, double &mean_dist)
{
    const dfg::Dfg &dfg = env.dfg();
    const mapper::MappingState &state = env.state();
    const std::int32_t ii = env.ii();
    const bool multi_hop = env.arch().isMultiHop();
    const std::int32_t node_time =
        env.schedule().time[static_cast<std::size_t>(node)];

    double dist_sum = 0.0;
    std::int32_t dist_count = 0;

    auto check = [&](const dfg::DfgEdge &e, bool node_is_dst) {
        const dfg::NodeId other = node_is_dst ? e.src : e.dst;
        if (other == node || !state.placed(other))
            return true;
        if (dfg.node(e.src).opcode == dfg::Opcode::Const)
            return true; // configuration-supplied, always routable
        const cgra::PeId other_pe = state.placement(other).pe;
        const std::int32_t d =
            mrrg.hopDistance(node_is_dst ? other_pe : pe,
                             node_is_dst ? pe : other_pe);
        const std::int32_t t_src = node_is_dst
            ? state.placement(other).time
            : node_time;
        const std::int32_t t_dst = node_is_dst
            ? node_time
            : state.placement(other).time;
        const std::int32_t budget = t_dst + ii * e.distance - t_src;
        dist_sum += d < 0 ? 1e3 : static_cast<double>(d);
        ++dist_count;
        if (multi_hop)
            return d >= 0; // any connected pair is one-cycle reachable
        return d >= 0 && d <= budget;
    };

    for (std::int32_t ei : dfg.inEdges(node)) {
        if (!check(dfg.edges()[static_cast<std::size_t>(ei)], true))
            return false;
    }
    for (std::int32_t ei : dfg.outEdges(node)) {
        const dfg::DfgEdge &e = dfg.edges()[static_cast<std::size_t>(ei)];
        if (e.src == e.dst)
            continue;
        if (!check(e, false))
            return false;
    }
    // -1 signals "unconstrained" so the caller can apply its own
    // spatial-continuity anchor.
    mean_dist = dist_count > 0 ? dist_sum / dist_count : -1.0;
    return true;
}

} // namespace

MapZeroAgent::MapZeroAgent(std::shared_ptr<const MapZeroNet> net,
                           AgentConfig config,
                           std::shared_ptr<Evaluator> evaluator)
    : net_(std::move(net)), config_(config),
      evaluator_(std::move(evaluator))
{
    if (!net_)
        fatal("MapZeroAgent requires a network");
    if (!evaluator_)
        evaluator_ = std::make_shared<DirectEvaluator>(*net_);
    else if (&evaluator_->network() != net_.get())
        fatal("MapZeroAgent: evaluator wraps a different network");
}

void
MapZeroAgent::harvest(const mapper::MapEnv &env,
                      baselines::AttemptResult &result) const
{
    result.success = true;
    result.placements = baselines::collectPlacements(env.state());
    result.totalHops = 0;
    for (std::int32_t ei = 0; ei < env.dfg().edgeCount(); ++ei)
        result.totalHops += env.state().edgeRoute(ei).hops;
}

bool
MapZeroAgent::guidedSearch(mapper::MapEnv &env, const Deadline &deadline,
                           baselines::AttemptResult &result, Rng &rng)
{
    const std::int32_t n = env.dfg().nodeCount();
    // All-pairs link distance precomputed once per MRRG construction.
    const cgra::Mrrg &mrrg = env.mrrg();
    ObservationBuilder obs_builder;
    double noise = 0.0;

    // Per-depth candidate lists: routability-pruned, ordered by policy
    // probability plus a locality bias toward placed producers. The
    // network is consulted once per depth (first visit); re-visits after
    // backtracking re-filter legality/routability cheaply and reuse the
    // cached policy, so deep search costs no extra inference.
    std::vector<std::vector<cgra::PeId>> candidates(
        static_cast<std::size_t>(n));
    std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<double>> policy_cache(
        static_cast<std::size_t>(n));
    std::int32_t depth = 0;
    std::int64_t backtracks = 0;

    auto fill_candidates = [&](std::int32_t d) {
        auto &list = candidates[static_cast<std::size_t>(d)];
        list.clear();
        cursor[static_cast<std::size_t>(d)] = 0;
        if (env.legalActionCount() == 0) {
            env.noteDeadEnd();
            return; // dead end: caller backtracks
        }
        const dfg::NodeId node = env.currentNode();
        auto &probs = policy_cache[static_cast<std::size_t>(d)];
        if (probs.empty())
            probs = evaluator_->policyProbabilities(
                obs_builder.refresh(env));
        const mapper::MappingState &state = env.state();
        // Spatial continuity anchor for nodes with no placed neighbors
        // (sources): prefer staying near the previous placement so the
        // mapping grows compactly instead of scattering.
        cgra::PeId anchor = -1;
        if (d > 0) {
            const dfg::NodeId prev = env.schedule().order[
                static_cast<std::size_t>(d - 1)];
            if (state.placed(prev))
                anchor = state.placement(prev).pe;
        }
        std::vector<std::pair<double, cgra::PeId>> scored;
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(probs.size()); ++pe) {
            if (!state.placementLegal(node, pe))
                continue;
            double mean_dist = 0.0;
            if (!placementRoutable(env, mrrg, node, pe, mean_dist))
                continue;
            if (mean_dist < 0.0) {
                if (anchor >= 0) {
                    const std::int32_t da = mrrg.hopDistance(anchor, pe);
                    mean_dist = da < 0 ? 8.0 : static_cast<double>(da);
                } else {
                    mean_dist = 0.0;
                }
            }
            const double score =
                probs[static_cast<std::size_t>(pe)] +
                0.25 * std::exp(-0.5 * mean_dist) +
                noise * rng.uniformReal();
            scored.emplace_back(-score, pe);
        }
        std::stable_sort(scored.begin(), scored.end());
        for (const auto &[neg_score, pe] : scored)
            list.push_back(pe);
        if (list.empty())
            env.noteDeadEnd(); // every legal PE pruned as unroutable
    };

    // Bounded DFS with randomized restarts: a small per-restart budget
    // limits thrash in subtrees poisoned by a bad early placement; on
    // restart, score noise diversifies the exploration (the "minor
    // errors, timely remediated" behaviour of §3.6.2 at scale).
    std::int64_t per_restart_cap =
        std::max<std::int64_t>(256, 16LL * n);
    bool root_exhausted = false;
    while (!deadline.expired() &&
           backtracks <= config_.guidedBacktrackBudget &&
           !root_exhausted) {
        ++result.episodes;
        while (env.placedCount() > 0)
            env.undo();
        depth = 0;
        std::int64_t restart_backtracks = 0;
        fill_candidates(0);

        while (depth < n) {
            if (deadline.expired() ||
                backtracks > config_.guidedBacktrackBudget ||
                restart_backtracks > per_restart_cap) {
                break;
            }

            auto &list = candidates[static_cast<std::size_t>(depth)];
            auto &cur = cursor[static_cast<std::size_t>(depth)];
            bool advanced = false;
            while (cur < list.size()) {
                const cgra::PeId pe = list[cur++];
                const dfg::NodeId node = env.currentNode();
                if (!env.state().placementLegal(node, pe))
                    continue;
                const mapper::StepOutcome out = env.step(pe);
                if (out.routedOk) {
                    advanced = true;
                    break;
                }
                env.undo();
                ++backtracks;
                ++restart_backtracks;
            }

            if (advanced) {
                ++depth;
                if (depth < n)
                    fill_candidates(depth);
                continue;
            }

            if (depth == 0) {
                // Exhausted at the root under the current ordering.
                root_exhausted = noise == 0.0;
                break;
            }
            env.undo();
            ++backtracks;
            ++restart_backtracks;
            --depth;
        }

        if (depth == n && env.success()) {
            result.searchOps += backtracks;
            harvest(env, result);
            return true;
        }
        ++result.failedEpisodes;
        // Diversify the next restart and let it search deeper.
        noise = std::min(0.30, noise + 0.06);
        per_restart_cap *= 2;
        for (auto &cached : policy_cache)
            cached.clear();
    }
    result.searchOps += backtracks;
    return false;
}

bool
MapZeroAgent::mctsSearch(mapper::MapEnv &env, const Deadline &deadline,
                         baselines::AttemptResult &result, Rng &rng)
{
    Mcts mcts(*evaluator_, config_.mcts);
    for (std::int32_t restart = 0; restart < config_.mctsRestarts;
         ++restart) {
        env.reset();
        ++result.episodes;
        while (!env.done()) {
            if (deadline.expired())
                return false;
            if (env.legalActionCount() == 0) {
                env.noteDeadEnd();
                break;
            }
            MctsMoveResult move = mcts.runFromCurrent(env, rng);
            if (move.solvedSuffix) {
                for (std::int32_t a : *move.solvedSuffix)
                    env.step(a);
                break;
            }
            if (move.bestAction < 0)
                break;
            env.step(move.bestAction);
        }
        if (env.success()) {
            harvest(env, result);
            return true;
        }
        ++result.searchOps; // failed episode counts as one backtrack op
        ++result.failedEpisodes;
    }
    return false;
}

baselines::AttemptResult
MapZeroAgent::map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                  std::int32_t ii, const Deadline &deadline)
{
    baselines::AttemptResult result;
    result.ii = ii;
    Timer timer;

    if (arch.peCount() != net_->peCount())
        fatal(cat("network policy head covers ", net_->peCount(),
                  " PEs but the architecture has ", arch.peCount()));

    if (!mapper::MapEnv::feasible(dfg, ii)) {
        result.infeasible = true;
        result.seconds = timer.seconds();
        return result;
    }

    Rng rng(config_.seed);
    mapper::MapEnv env(dfg, arch, ii);
    if (!env.structurallyPlaceable()) {
        result.infeasible = true;
        result.seconds = timer.seconds();
        return result;
    }

    bool ok = config_.useGuided &&
              guidedSearch(env, deadline, result, rng);
    if (!ok && config_.useMcts && !deadline.expired()) {
        ok = mctsSearch(env, deadline, result, rng);
    }
    if (!ok)
        result.failure = env.failureStats();

    result.timedOut = !ok && deadline.expired();
    result.seconds = timer.seconds();
    lastBacktracks_ = result.searchOps;
    return result;
}

} // namespace mapzero::rl
