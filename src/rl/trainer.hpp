/**
 * @file
 * Self-play training loop (paper §3.6, §4.4, Algorithm 1).
 *
 * Each episode maps one DFG with MCTS-assisted self-play, stores the
 * (s, pi, r) groups (optionally symmetry-augmented, §3.6.1) in the
 * prioritized replay buffer, and updates the network by minimizing
 * (r - v)^2 - pi . log p with gradient clipping. Curriculum pre-training
 * (§3.6.2) feeds random DFGs ordered easy to hard.
 */

#ifndef MAPZERO_RL_TRAINER_HPP
#define MAPZERO_RL_TRAINER_HPP

#include <memory>
#include <string>

#include "cgra/symmetry.hpp"
#include "common/timer.hpp"
#include "nn/optim.hpp"
#include "rl/mcts.hpp"
#include "rl/replay.hpp"

namespace mapzero::rl {

/** Training hyper-parameters. */
struct TrainerConfig {
    MctsConfig mcts;
    /** Replay capacity (paper: 10,000). */
    std::size_t replayCapacity = 10000;
    /** SGD batch size (paper: 32). */
    std::size_t batchSize = 32;
    /** Gradient updates run after each self-play episode. */
    std::int32_t updatesPerEpisode = 4;
    /** Global-norm gradient clip (Algorithm 1 line 21). */
    float gradClip = 5.0f;
    /** Learning-rate schedule (Fig. 12f): warmup then decay. */
    float peakLr = 3e-3f;
    std::size_t warmupSteps = 20;
    float lrDecay = 0.999f;
    float floorLr = 1e-4f;
    /** Symmetry data augmentation (§3.6.1). */
    bool augment = true;
    /** Curriculum ordering in pretrain() (easy to hard, §3.6.2);
     *  false = random task order (the curriculum ablation arm). */
    bool curriculum = true;
    /** Per-step shaped routing cost (hop penalty); 0 disables the
     *  shaping and leaves only conflict/terminal signals (the
     *  reward-shaping ablation arm). */
    double envHopCost = 0.02;
    /** Cap on augmented copies per sample (fabric orbit can be large). */
    std::size_t maxAugmentations = 3;
    /** MCTS self-play (the §4.7 ablation turns this off). */
    bool useMcts = true;
    /** Start training once the buffer holds this many samples. */
    std::size_t minBufferForTraining = 64;
    /** Append one JSON line per EpisodeStats here ("" disables). */
    std::string statsJsonlPath;
    /** inform() progress every this many episodes (0 disables). */
    std::int32_t progressEvery = 25;
    /**
     * Self-play workers for pretrain(): 1 = today's fully sequential
     * loop (bit-reproducible with earlier releases), 0 = resolve from
     * --jobs / MAPZERO_NUM_THREADS (common/parallel.hpp), N = exactly
     * N workers. With N > 1, episodes run in waves of N whose network
     * evaluations are coalesced by an EvalBatcher; replay insertion
     * and gradient updates stay on the calling thread in episode
     * order, so a run is deterministic for a fixed (seed, worker
     * count).
     */
    std::int32_t selfPlayJobs = 0;
    /** Observations per coalesced forward pass in parallel self-play. */
    std::size_t evalBatchCap = 16;
    /**
     * Auto-save a full trainer checkpoint here during pretrain() (""
     * disables). Writes are atomic (temp file + rename), so a crash at
     * any instant leaves either the previous checkpoint or the new one,
     * never a torn file.
     */
    std::string checkpointPath;
    /**
     * Save every this many completed episodes (0 disables periodic
     * saves; a final save still happens when checkpointPath is set).
     * With selfPlayJobs > 1 saves land on wave boundaries, which is
     * what keeps a resumed parallel run bit-identical.
     */
    std::int32_t checkpointEvery = 0;
    /**
     * Stop pretrain() after this many episodes in this call (0 = no
     * cap). Supports chunked training runs and deterministic
     * crash-injection in the resume tests; with selfPlayJobs > 1 the
     * cap is enforced at wave granularity.
     */
    std::int32_t maxEpisodesPerRun = 0;
    /**
     * Live telemetry: >= 0 starts the process-wide HTTP telemetry
     * server (svc/telemetry_server.hpp) on this port at the start of
     * pretrain() (0 = ephemeral, printed on stdout). -1 (the default)
     * leaves the server alone. Same semantics as
     * CompileOptions::statsPort.
     */
    std::int32_t statsPort = -1;
};

/** Per-episode learning-curve record (drives Fig. 12). */
struct EpisodeStats {
    std::int32_t episode = 0;
    double totalLoss = 0.0;
    double valueLoss = 0.0;
    double policyLoss = 0.0;
    /** Undiscounted episode reward (Fig. 12d). */
    double reward = 0.0;
    /** Routing penalty of the episode (Fig. 12e). */
    double routingPenalty = 0.0;
    double learningRate = 0.0;
    /** Largest pre-clip gradient norm among the episode's updates. */
    double gradNorm = 0.0;
    bool success = false;
};

/** Self-play trainer bound to one architecture. */
class Trainer
{
  public:
    /**
     * @param arch target fabric (must outlive the trainer)
     * @param config hyper-parameters
     * @param seed deterministic training stream
     */
    Trainer(const cgra::Architecture &arch, TrainerConfig config,
            std::uint64_t seed);

    MapZeroNet &network() { return *net_; }
    const MapZeroNet &network() const { return *net_; }
    std::shared_ptr<MapZeroNet> networkPtr() { return net_; }

    /**
     * One self-play episode on @p dfg at initiation interval @p ii,
     * followed by gradient updates. Returns the learning-curve record.
     */
    EpisodeStats runEpisode(const dfg::Dfg &dfg, std::int32_t ii);

    /**
     * Curriculum pre-training (§3.6.2): @p episodes random DFGs with
     * [min_nodes, max_nodes] nodes (paper: 3 to 30), ordered easy to
     * hard; stops early at the deadline.
     */
    std::vector<EpisodeStats> pretrain(std::int32_t episodes,
                                       std::int32_t min_nodes,
                                       std::int32_t max_nodes,
                                       const Deadline &deadline);

    /** Outcome of a greedy evaluation rollout (Fig. 12e). */
    struct EvalResult {
        bool success = false;
        /** Accumulated routing penalty of the rollout. */
        double routingPenalty = 0.0;
    };

    /**
     * Deterministic greedy-policy rollout on a held-out task (no MCTS,
     * no exploration noise, no backtracking): the paper's per-epoch
     * "routing penalty (in evaluation)" probe.
     */
    EvalResult evaluateGreedy(const dfg::Dfg &dfg, std::int32_t ii) const;

    const std::vector<EpisodeStats> &history() const { return history_; }

    /**
     * Write a full training checkpoint to @p path (atomic): network
     * parameters, Adam moments and step count, LR-schedule position,
     * the replay buffer with priorities and ring cursor, the training
     * RNG stream, and the episode counter. Everything a bit-identical
     * resume needs; the stats history is not included (the JSONL sink
     * is the durable record of past episodes).
     */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Restore a checkpoint written by saveCheckpoint into this trainer.
     * The trainer must be built for the same fabric (PE-count mismatch
     * is fatal); the checkpoint's seed replaces the constructor's so
     * derived self-play streams line up. Validation (CRC, framing,
     * shapes) happens before any state is mutated — a corrupt file
     * raises fatal() and leaves the trainer untouched. A subsequent
     * pretrain() with the original arguments continues exactly where
     * the saved run stopped.
     */
    void loadCheckpoint(const std::string &path);

    /** Episodes completed so far (the resume position). */
    std::int32_t episodesCompleted() const { return episodeCounter_; }

  private:
    /** One recorded self-play decision (return target filled later). */
    struct MoveRecord {
        Observation obs;
        std::vector<double> pi;
        double reward = 0.0;
    };

    /** Everything one self-play rollout produced. */
    struct SelfPlayOutcome {
        std::vector<MoveRecord> moves;
        bool success = false;
        /** Accumulated per-step env reward (routing penalty). */
        double envReward = 0.0;
    };

    /**
     * The forward-only self-play phase of one episode: rolls out the
     * (MCTS-assisted) policy on a fresh environment. Touches no
     * trainer state, so several rollouts may run concurrently with
     * per-episode Rng streams and a shared evaluator.
     */
    SelfPlayOutcome runSelfPlay(const dfg::Dfg &dfg, std::int32_t ii,
                                std::int32_t episode,
                                Evaluator &evaluator, Rng &rng) const;

    /**
     * The learning phase of one episode: store the (s, pi, r) groups
     * (with symmetry augmentation), run gradient updates, publish
     * stats. Caller-thread only.
     */
    EpisodeStats absorbEpisode(SelfPlayOutcome outcome,
                               std::int32_t episode);

    /** One gradient step over a replay batch; accumulates into stats. */
    void trainStep(EpisodeStats &stats);

    const cgra::Architecture *arch_;
    TrainerConfig config_;
    std::uint64_t seed_;
    Rng rng_;
    std::shared_ptr<MapZeroNet> net_;
    std::unique_ptr<nn::Adam> optimizer_;
    nn::WarmupDecaySchedule lrSchedule_;
    ReplayBuffer replay_;
    std::vector<cgra::PePermutation> symmetries_;
    std::vector<EpisodeStats> history_;
    std::int32_t episodeCounter_ = 0;
    /** The buffer-fill inform() fires once per trainer. */
    bool bufferFillAnnounced_ = false;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_TRAINER_HPP
