#include "rl/trainer.hpp"

#include <algorithm>
#include <fstream>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::rl {

namespace {

/** Publish an episode's learning-curve record into the registry. */
void
publishEpisodeMetrics(const EpisodeStats &stats, std::size_t replay_size)
{
    static Counter &episodes = metrics().counter("trainer.episodes");
    static Counter &successes = metrics().counter("trainer.successes");
    static Histogram &reward =
        metrics().histogram("trainer.episode_reward");
    static Histogram &loss = metrics().histogram("trainer.total_loss");
    static Gauge &lr = metrics().gauge("trainer.learning_rate");
    static Gauge &replay = metrics().gauge("trainer.replay_size");

    episodes.add();
    if (stats.success)
        successes.add();
    reward.record(stats.reward);
    loss.record(stats.totalLoss);
    lr.set(stats.learningRate);
    replay.set(static_cast<double>(replay_size));
}

/** Append @p stats as one JSON line to @p path (best-effort). */
void
appendStatsJsonl(const std::string &path, const EpisodeStats &stats)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        warn("cannot append episode stats to " + path);
        return;
    }
    os << "{\"episode\": " << stats.episode
       << ", \"success\": " << (stats.success ? "true" : "false")
       << ", \"reward\": " << stats.reward
       << ", \"routingPenalty\": " << stats.routingPenalty
       << ", \"totalLoss\": " << stats.totalLoss
       << ", \"valueLoss\": " << stats.valueLoss
       << ", \"policyLoss\": " << stats.policyLoss
       << ", \"learningRate\": " << stats.learningRate << "}\n";
}

} // namespace

Trainer::Trainer(const cgra::Architecture &arch, TrainerConfig config,
                 std::uint64_t seed)
    : arch_(&arch), config_(config), seed_(seed), rng_(seed),
      lrSchedule_(config.peakLr, config.warmupSteps, config.lrDecay,
                  config.floorLr),
      replay_(config.replayCapacity)
{
    net_ = std::make_shared<MapZeroNet>(arch.peCount(), NetworkConfig{},
                                        rng_);
    optimizer_ = std::make_unique<nn::Adam>(net_->parameters(),
                                            config.peakLr);
    symmetries_ = cgra::gridSymmetries(arch);
}

EpisodeStats
Trainer::runEpisode(const dfg::Dfg &dfg, std::int32_t ii)
{
    const std::int32_t episode = episodeCounter_++;
    DirectEvaluator evaluator(*net_);
    return absorbEpisode(runSelfPlay(dfg, ii, episode, evaluator, rng_),
                         episode);
}

Trainer::SelfPlayOutcome
Trainer::runSelfPlay(const dfg::Dfg &dfg, std::int32_t ii,
                     std::int32_t episode, Evaluator &evaluator,
                     Rng &rng) const
{
    TraceSpan episode_span("episode", "trainer",
                           cat("{\"episode\": ", episode,
                               ", \"ii\": ", ii, "}"));

    // Training episodes keep going after a routing conflict (the paper
    // charges -100 and continues; the final return encodes success), so
    // every episode yields a full trajectory of learning signal.
    mapper::EnvConfig env_config;
    env_config.stopOnRoutingFailure = false;
    env_config.hopCost = config_.envHopCost;
    mapper::MapEnv env(dfg, *arch_, ii, env_config);

    // --- Self-play ------------------------------------------------------
    // Per-move records; the return target is filled in once the episode
    // outcome is known.
    SelfPlayOutcome outcome;
    std::vector<MoveRecord> &moves = outcome.moves;

    MctsConfig mcts_config = config_.mcts;
    mcts_config.noiseFraction =
        config_.useMcts ? 0.25 : mcts_config.noiseFraction;
    Mcts mcts(evaluator, mcts_config);
    ObservationBuilder obs_builder;

    while (!env.done()) {
        if (env.legalActionCount() == 0)
            break; // dead end: "no available PE exists"

        MoveRecord record;
        record.obs = obs_builder.refresh(env);

        std::int32_t action = -1;
        std::optional<std::vector<std::int32_t>> solved;
        if (config_.useMcts) {
            MctsMoveResult move = mcts.runFromCurrent(env, rng);
            record.pi = move.pi;
            action = move.bestAction;
            solved = std::move(move.solvedSuffix);
        } else {
            // Ablation arm (§4.7): sample directly from the policy.
            const auto probs = evaluator.policyProbabilities(record.obs);
            record.pi = probs;
            action = static_cast<std::int32_t>(
                rng.weightedIndex(probs));
        }

        if (solved && !solved->empty()) {
            // A simulation completed the mapping: replay its actions.
            for (std::size_t i = 0; i < solved->size(); ++i) {
                const std::int32_t a = (*solved)[i];
                if (i > 0) {
                    MoveRecord extra;
                    extra.obs = obs_builder.refresh(env);
                    extra.pi.assign(
                        static_cast<std::size_t>(arch_->peCount()), 0.0);
                    extra.pi[static_cast<std::size_t>(a)] = 1.0;
                    const auto out = env.step(a);
                    extra.reward = out.reward;
                    moves.push_back(std::move(extra));
                } else {
                    const auto out = env.step(a);
                    record.reward = out.reward;
                    moves.push_back(std::move(record));
                }
            }
            break;
        }

        if (action < 0)
            break;
        const mapper::StepOutcome out = env.step(action);
        record.reward = out.reward;
        moves.push_back(std::move(record));
    }

    outcome.success = env.success();
    outcome.envReward = env.totalReward();
    return outcome;
}

EpisodeStats
Trainer::absorbEpisode(SelfPlayOutcome outcome, std::int32_t episode)
{
    EpisodeStats stats;
    stats.episode = episode;
    stats.success = outcome.success;
    stats.reward = outcome.envReward +
                   (stats.success ? config_.mcts.successBonus
                                  : -config_.mcts.deadEndPenalty);
    stats.routingPenalty = outcome.envReward;

    std::vector<MoveRecord> &moves = outcome.moves;

    // --- Store (s, pi, r) groups ----------------------------------------
    const double final_bonus = stats.success
        ? config_.mcts.successBonus
        : -config_.mcts.deadEndPenalty;
    double suffix = final_bonus;
    for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
        suffix += it->reward;
        TrainingSample sample;
        sample.observation = std::move(it->obs);
        sample.pi = std::move(it->pi);
        sample.value = suffix * config_.mcts.valueScale;
        if (config_.augment && symmetries_.size() > 1) {
            // Identity is symmetries_[0]; add up to maxAugmentations
            // non-trivial orbit copies.
            const std::size_t extra = std::min(
                config_.maxAugmentations, symmetries_.size() - 1);
            for (std::size_t k = 1; k <= extra; ++k) {
                const auto &perm = symmetries_[
                    1 + rng_.uniformInt(symmetries_.size() - 1)];
                TrainingSample aug;
                aug.observation =
                    permuteObservation(sample.observation, perm);
                aug.pi.assign(sample.pi.size(), 0.0);
                for (std::size_t a = 0; a < sample.pi.size(); ++a)
                    aug.pi[static_cast<std::size_t>(
                        perm[a])] = sample.pi[a];
                aug.value = sample.value;
                replay_.push(std::move(aug));
            }
        }
        replay_.push(std::move(sample));
    }

    // --- Gradient updates ------------------------------------------------
    if (replay_.size() >= config_.minBufferForTraining) {
        if (!bufferFillAnnounced_) {
            inform(cat("replay buffer reached the training threshold (",
                       replay_.size(), " >= ",
                       config_.minBufferForTraining,
                       " samples); gradient updates begin"));
            bufferFillAnnounced_ = true;
        }
        for (std::int32_t u = 0; u < config_.updatesPerEpisode; ++u)
            trainStep(stats);
        if (config_.updatesPerEpisode > 0) {
            const auto d = static_cast<double>(config_.updatesPerEpisode);
            stats.totalLoss /= d;
            stats.valueLoss /= d;
            stats.policyLoss /= d;
        }
    }
    stats.learningRate = optimizer_->learningRate();

    publishEpisodeMetrics(stats, replay_.size());
    if (!config_.statsJsonlPath.empty())
        appendStatsJsonl(config_.statsJsonlPath, stats);
    if (config_.progressEvery > 0 &&
        (stats.episode + 1) % config_.progressEvery == 0) {
        std::int32_t recent_ok = 0;
        const std::size_t window = std::min<std::size_t>(
            history_.size() + 1,
            static_cast<std::size_t>(config_.progressEvery));
        for (std::size_t i = history_.size() + 1 - window;
             i < history_.size(); ++i)
            recent_ok += history_[i].success ? 1 : 0;
        recent_ok += stats.success ? 1 : 0;
        inform(cat("episode ", stats.episode + 1, ": ", recent_ok, "/",
                   window, " recent successes, loss=", stats.totalLoss,
                   ", lr=", stats.learningRate));
    }

    history_.push_back(stats);
    return stats;
}

void
Trainer::trainStep(EpisodeStats &stats)
{
    const auto batch = replay_.sampleBatch(config_.batchSize, rng_);
    lrSchedule_.apply(*optimizer_);
    optimizer_->zeroGrad();

    double value_loss_acc = 0.0;
    double policy_loss_acc = 0.0;

    // Accumulate gradients sample by sample (batch = gradient average).
    const float inv_batch = 1.0f / static_cast<float>(batch.size());
    std::vector<nn::Value> losses;
    losses.reserve(batch.size());
    for (const TrainingSample *sample : batch) {
        const MapZeroNet::Output out = net_->forward(sample->observation);
        // (r - v)^2
        nn::Value target = nn::Value::constant(nn::Tensor(
            1, 1, {static_cast<float>(sample->value)}));
        nn::Value v_loss = nn::square(nn::sub(out.value, target));
        // -pi . log p  (only legal entries carry probability mass)
        nn::Value pi = nn::Value::constant(nn::Tensor(
            1, sample->pi.size(),
            std::vector<float>(sample->pi.begin(), sample->pi.end())));
        nn::Value p_loss =
            nn::scale(nn::sumAll(nn::mulElem(pi, out.logPolicy)), -1.0f);

        value_loss_acc += static_cast<double>(v_loss.item());
        policy_loss_acc += static_cast<double>(p_loss.item());

        nn::Value loss =
            nn::scale(nn::add(v_loss, p_loss), inv_batch);
        losses.push_back(loss);
    }
    // Sum into a single scalar loss and backprop once.
    nn::Value loss_sum = losses.front();
    for (std::size_t i = 1; i < losses.size(); ++i)
        loss_sum = nn::add(loss_sum, losses[i]);
    loss_sum.backward();
    nn::clipGradNorm(net_->parameters(), config_.gradClip);
    optimizer_->step();

    const auto n = static_cast<double>(batch.size());
    stats.valueLoss += value_loss_acc / n;
    stats.policyLoss += policy_loss_acc / n;
    stats.totalLoss += (value_loss_acc + policy_loss_acc) / n;
}

Trainer::EvalResult
Trainer::evaluateGreedy(const dfg::Dfg &dfg, std::int32_t ii) const
{
    EvalResult result;
    mapper::MapEnv env(dfg, *arch_, ii);
    ObservationBuilder obs_builder;
    while (!env.done()) {
        if (env.legalActionCount() == 0)
            break;
        const Observation &obs = obs_builder.refresh(env);
        const auto probs = net_->policyProbabilities(obs);
        std::int32_t best = -1;
        double best_p = -1.0;
        for (std::size_t a = 0; a < probs.size(); ++a) {
            if (obs.actionMask[a] && probs[a] > best_p) {
                best_p = probs[a];
                best = static_cast<std::int32_t>(a);
            }
        }
        if (best < 0)
            break;
        env.step(best);
    }
    result.success = env.success();
    result.routingPenalty = env.totalReward();
    return result;
}

std::vector<EpisodeStats>
Trainer::pretrain(std::int32_t episodes, std::int32_t min_nodes,
                  std::int32_t max_nodes, const Deadline &deadline)
{
    static Gauge &throughput =
        metrics().gauge("trainer.episodes_per_sec");

    // Curriculum: random DFGs sorted easy to hard (§3.6.2); the
    // ablation arm shuffles the same task set instead.
    auto tasks = dfg::curriculum(episodes, min_nodes, max_nodes, rng_);
    if (!config_.curriculum)
        rng_.shuffle(tasks);

    const auto task_mii = [this](const dfg::Dfg &task) {
        return std::max(dfg::minimumIi(task, arch_->peCount(),
                                       arch_->memoryIssueCapacity()),
                        1);
    };

    const std::size_t jobs = resolveJobs(
        config_.selfPlayJobs < 0
            ? 1
            : static_cast<std::size_t>(config_.selfPlayJobs));
    const Timer wall;
    std::vector<EpisodeStats> out;

    if (jobs <= 1) {
        // Sequential path: bit-identical to the single-threaded trainer.
        for (const auto &task : tasks) {
            if (deadline.expired())
                break;
            out.push_back(runEpisode(task, task_mii(task)));
        }
        if (wall.seconds() > 0.0)
            throughput.set(static_cast<double>(out.size()) /
                           wall.seconds());
        return out;
    }

    // Parallel path: self-play rollouts of up to `jobs` episodes run
    // concurrently against a snapshot of the network, with their leaf
    // evaluations coalesced into batched forward passes. Replay
    // insertion and gradient updates then run on this thread in
    // episode order, so weights never move underneath a rollout and a
    // run is a pure function of (seed, jobs).
    ThreadPool pool(jobs);
    EvalBatcher batcher(*net_, config_.evalBatchCap);
    inform(cat("parallel self-play: ", jobs, " workers, eval batch cap ",
               config_.evalBatchCap));

    struct Slot {
        const dfg::Dfg *task = nullptr;
        std::int32_t episode = 0;
        SelfPlayOutcome outcome;
    };
    std::size_t next = 0;
    while (next < tasks.size() && !deadline.expired()) {
        const std::size_t wave =
            std::min(jobs, tasks.size() - next);
        std::vector<Slot> slots(wave);
        for (std::size_t i = 0; i < wave; ++i) {
            slots[i].task = &tasks[next + i];
            slots[i].episode = episodeCounter_++;
        }
        parallelFor(pool, wave, [&](std::size_t i) {
            Slot &slot = slots[i];
            // Stream keyed by episode index, not worker id: random
            // choices depend on which episode is played, never on
            // which worker plays it.
            Rng worker_rng(Rng::deriveSeed(seed_, static_cast<
                std::uint64_t>(slot.episode)));
            EvalBatcher::Session session(batcher);
            slot.outcome =
                runSelfPlay(*slot.task, task_mii(*slot.task),
                            slot.episode, batcher, worker_rng);
        });
        for (auto &slot : slots)
            out.push_back(
                absorbEpisode(std::move(slot.outcome), slot.episode));
        next += wave;
    }
    if (wall.seconds() > 0.0)
        throughput.set(static_cast<double>(out.size()) / wall.seconds());
    return out;
}

} // namespace mapzero::rl
