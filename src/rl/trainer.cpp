#include "rl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"
#include "nn/serialize.hpp"
#include "svc/telemetry_server.hpp"

namespace mapzero::rl {

namespace {

/**
 * Stream id of the curriculum task generator. Tasks are drawn from a
 * seed-derived stream rather than the live training rng_, so the task
 * list is a pure function of (seed, episodes, node range) and a resumed
 * pretrain() regenerates it identically without replaying the episodes
 * that produced the checkpointed rng_ state.
 */
constexpr std::uint64_t kCurriculumStream = 0x43555252u; // "CURR"

/** Publish an episode's learning-curve record into the registry. */
void
publishEpisodeMetrics(const EpisodeStats &stats, std::size_t replay_size)
{
    static Counter &episodes = metrics().counter("trainer.episodes");
    static Counter &successes = metrics().counter("trainer.successes");
    static Histogram &reward =
        metrics().histogram("trainer.episode_reward");
    static Histogram &loss = metrics().histogram("trainer.total_loss");
    static Gauge &lr = metrics().gauge("trainer.learning_rate");
    static Gauge &replay = metrics().gauge("trainer.replay_size");

    episodes.add();
    if (stats.success)
        successes.add();
    reward.record(stats.reward);
    loss.record(stats.totalLoss);
    lr.set(stats.learningRate);
    replay.set(static_cast<double>(replay_size));
}

/**
 * Flight-recorder record for one training episode (loss terms, grad
 * norm, replay priority health). Only called when the journal is on.
 */
void
emitEpisodeRecord(const EpisodeStats &stats,
                  const PriorityStats &priorities)
{
    JournalRecord record("trainer.episode");
    record.field("episode", stats.episode)
        .field("success", stats.success)
        .field("reward", stats.reward)
        .field("routing_penalty", stats.routingPenalty)
        .field("total_loss", stats.totalLoss)
        .field("value_loss", stats.valueLoss)
        .field("policy_loss", stats.policyLoss)
        .field("grad_norm", stats.gradNorm)
        .field("learning_rate", stats.learningRate)
        .field("replay_size", priorities.size)
        .field("priority_min", priorities.min)
        .field("priority_mean", priorities.mean)
        .field("priority_max", priorities.max);
    journal().emit(std::move(record));
}

/** Append @p stats as one JSON line to @p path (best-effort). */
void
appendStatsJsonl(const std::string &path, const EpisodeStats &stats)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        warn("cannot append episode stats to " + path);
        return;
    }
    os << "{\"episode\": " << stats.episode
       << ", \"success\": " << (stats.success ? "true" : "false")
       << ", \"reward\": " << stats.reward
       << ", \"routingPenalty\": " << stats.routingPenalty
       << ", \"totalLoss\": " << stats.totalLoss
       << ", \"valueLoss\": " << stats.valueLoss
       << ", \"policyLoss\": " << stats.policyLoss
       << ", \"gradNorm\": " << stats.gradNorm
       << ", \"learningRate\": " << stats.learningRate << "}\n";
}

void
writeEdges(nn::ByteWriter &w, const nn::EdgeList &edges)
{
    w.u64(edges.size());
    for (const auto &[src, dst] : edges) {
        w.i32(src);
        w.i32(dst);
    }
}

nn::EdgeList
readEdges(nn::ByteReader &r)
{
    const std::uint64_t count = r.u64();
    nn::EdgeList edges;
    edges.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::int32_t src = r.i32();
        const std::int32_t dst = r.i32();
        edges.emplace_back(src, dst);
    }
    return edges;
}

void
writeObservation(nn::ByteWriter &w, const Observation &obs)
{
    w.tensor(obs.dfgFeatures);
    writeEdges(w, obs.dfgEdges);
    w.tensor(obs.cgraFeatures);
    writeEdges(w, obs.cgraEdges);
    w.tensor(obs.metadata);
    w.u64(obs.actionMask.size());
    for (const bool legal : obs.actionMask)
        w.u8(legal ? 1 : 0);
}

Observation
readObservation(nn::ByteReader &r)
{
    Observation obs;
    obs.dfgFeatures = r.tensor();
    obs.dfgEdges = readEdges(r);
    obs.cgraFeatures = r.tensor();
    obs.cgraEdges = readEdges(r);
    obs.metadata = r.tensor();
    const std::uint64_t mask_size = r.u64();
    obs.actionMask.resize(static_cast<std::size_t>(mask_size));
    for (std::uint64_t i = 0; i < mask_size; ++i)
        obs.actionMask[static_cast<std::size_t>(i)] = r.u8() != 0;
    return obs;
}

} // namespace

void
Trainer::saveCheckpoint(const std::string &path) const
{
    nn::CheckpointWriter writer;

    nn::ByteWriter trainer;
    trainer.i32(arch_->peCount());
    trainer.u64(seed_);
    trainer.i32(episodeCounter_);
    trainer.u8(bufferFillAnnounced_ ? 1 : 0);
    writer.addSection("trainer", trainer.take());

    writer.addSection("module", nn::moduleToBytes(*net_));

    nn::ByteWriter optim;
    const nn::AdamState adam = optimizer_->exportState();
    optim.u64(adam.step);
    optim.u64(adam.firstMoments.size());
    for (const auto &m : adam.firstMoments)
        optim.tensor(m);
    for (const auto &v : adam.secondMoments)
        optim.tensor(v);
    writer.addSection("optim", optim.take());

    nn::ByteWriter lr;
    lr.u64(lrSchedule_.step());
    writer.addSection("lr", lr.take());

    nn::ByteWriter rng;
    const RngState rng_state = rng_.state();
    for (const std::uint64_t word : rng_state.s)
        rng.u64(word);
    rng.u8(rng_state.hasSpareNormal ? 1 : 0);
    rng.f64(rng_state.spareNormal);
    writer.addSection("rng", rng.take());

    nn::ByteWriter replay;
    const ReplaySnapshot snap = replay_.snapshot();
    replay.u64(replay_.capacity());
    replay.u64(snap.cursor);
    replay.u64(snap.samples.size());
    for (const TrainingSample &sample : snap.samples) {
        writeObservation(replay, sample.observation);
        replay.u64(sample.pi.size());
        for (const double p : sample.pi)
            replay.f64(p);
        replay.f64(sample.value);
    }
    for (const double priority : snap.priorities)
        replay.f64(priority);
    writer.addSection("replay", replay.take());

    writer.writeFile(path);
}

void
Trainer::loadCheckpoint(const std::string &path)
{
    const nn::CheckpointReader reader =
        nn::CheckpointReader::fromFile(path);

    nn::ByteReader trainer(reader.section("trainer"), path);
    const std::int32_t pe_count = trainer.i32();
    if (pe_count != arch_->peCount())
        fatal(cat("checkpoint ", path, " was trained for a ", pe_count,
                  "-PE fabric, this trainer targets ",
                  arch_->peCount(), " PEs"));
    const std::uint64_t seed = trainer.u64();
    const std::int32_t episodes_done = trainer.i32();
    const bool announced = trainer.u8() != 0;
    trainer.expectEnd();
    if (seed != seed_)
        warn(cat("checkpoint ", path, " was written with seed ", seed,
                 ", adopting it over the constructor's ", seed_));

    nn::moduleFromBytes(*net_, reader.section("module"), path);

    nn::ByteReader optim(reader.section("optim"), path);
    nn::AdamState adam;
    adam.step = static_cast<std::size_t>(optim.u64());
    const std::uint64_t moment_count = optim.u64();
    adam.firstMoments.reserve(
        static_cast<std::size_t>(moment_count));
    adam.secondMoments.reserve(
        static_cast<std::size_t>(moment_count));
    for (std::uint64_t i = 0; i < moment_count; ++i)
        adam.firstMoments.push_back(optim.tensor());
    for (std::uint64_t i = 0; i < moment_count; ++i)
        adam.secondMoments.push_back(optim.tensor());
    optim.expectEnd();
    optimizer_->importState(adam);

    nn::ByteReader lr(reader.section("lr"), path);
    lrSchedule_.setStep(static_cast<std::size_t>(lr.u64()));
    lr.expectEnd();

    nn::ByteReader rng(reader.section("rng"), path);
    RngState rng_state;
    for (auto &word : rng_state.s)
        word = rng.u64();
    rng_state.hasSpareNormal = rng.u8() != 0;
    rng_state.spareNormal = rng.f64();
    rng.expectEnd();
    rng_.setState(rng_state);

    nn::ByteReader replay(reader.section("replay"), path);
    const std::uint64_t capacity = replay.u64();
    if (capacity != replay_.capacity())
        warn(cat("checkpoint replay capacity ", capacity,
                 " differs from the configured ", replay_.capacity()));
    ReplaySnapshot snap;
    snap.cursor = static_cast<std::size_t>(replay.u64());
    const std::uint64_t sample_count = replay.u64();
    snap.samples.reserve(static_cast<std::size_t>(sample_count));
    for (std::uint64_t i = 0; i < sample_count; ++i) {
        TrainingSample sample;
        sample.observation = readObservation(replay);
        const std::uint64_t pi_size = replay.u64();
        sample.pi.resize(static_cast<std::size_t>(pi_size));
        for (auto &p : sample.pi)
            p = replay.f64();
        sample.value = replay.f64();
        snap.samples.push_back(std::move(sample));
    }
    snap.priorities.resize(static_cast<std::size_t>(sample_count));
    for (auto &priority : snap.priorities)
        priority = replay.f64();
    replay.expectEnd();
    replay_.restore(std::move(snap));

    seed_ = seed;
    episodeCounter_ = episodes_done;
    bufferFillAnnounced_ = announced;
    inform(cat("restored trainer checkpoint ", path, " (",
               episodes_done, " episodes, ", sample_count,
               " replay samples, optimizer step ", adam.step, ")"));
}

Trainer::Trainer(const cgra::Architecture &arch, TrainerConfig config,
                 std::uint64_t seed)
    : arch_(&arch), config_(config), seed_(seed), rng_(seed),
      lrSchedule_(config.peakLr, config.warmupSteps, config.lrDecay,
                  config.floorLr),
      replay_(config.replayCapacity)
{
    net_ = std::make_shared<MapZeroNet>(arch.peCount(), NetworkConfig{},
                                        rng_);
    optimizer_ = std::make_unique<nn::Adam>(net_->parameters(),
                                            config.peakLr);
    symmetries_ = cgra::gridSymmetries(arch);
}

EpisodeStats
Trainer::runEpisode(const dfg::Dfg &dfg, std::int32_t ii)
{
    const std::int32_t episode = episodeCounter_++;
    DirectEvaluator evaluator(*net_);
    return absorbEpisode(runSelfPlay(dfg, ii, episode, evaluator, rng_),
                         episode);
}

Trainer::SelfPlayOutcome
Trainer::runSelfPlay(const dfg::Dfg &dfg, std::int32_t ii,
                     std::int32_t episode, Evaluator &evaluator,
                     Rng &rng) const
{
    TraceSpan episode_span("episode", "trainer",
                           cat("{\"episode\": ", episode,
                               ", \"ii\": ", ii, "}"));

    // Training episodes keep going after a routing conflict (the paper
    // charges -100 and continues; the final return encodes success), so
    // every episode yields a full trajectory of learning signal.
    mapper::EnvConfig env_config;
    env_config.stopOnRoutingFailure = false;
    env_config.hopCost = config_.envHopCost;
    mapper::MapEnv env(dfg, *arch_, ii, env_config);

    // --- Self-play ------------------------------------------------------
    // Per-move records; the return target is filled in once the episode
    // outcome is known.
    SelfPlayOutcome outcome;
    std::vector<MoveRecord> &moves = outcome.moves;

    MctsConfig mcts_config = config_.mcts;
    mcts_config.noiseFraction =
        config_.useMcts ? 0.25 : mcts_config.noiseFraction;
    Mcts mcts(evaluator, mcts_config);
    ObservationBuilder obs_builder;

    while (!env.done()) {
        if (env.legalActionCount() == 0)
            break; // dead end: "no available PE exists"

        MoveRecord record;
        record.obs = obs_builder.refresh(env);

        std::int32_t action = -1;
        std::optional<std::vector<std::int32_t>> solved;
        if (config_.useMcts) {
            MctsMoveResult move = mcts.runFromCurrent(env, rng);
            record.pi = move.pi;
            action = move.bestAction;
            solved = std::move(move.solvedSuffix);
        } else {
            // Ablation arm (§4.7): sample directly from the policy.
            const auto probs = evaluator.policyProbabilities(record.obs);
            record.pi = probs;
            action = static_cast<std::int32_t>(
                rng.weightedIndex(probs));
        }

        if (solved && !solved->empty()) {
            // A simulation completed the mapping: replay its actions.
            for (std::size_t i = 0; i < solved->size(); ++i) {
                const std::int32_t a = (*solved)[i];
                if (i > 0) {
                    MoveRecord extra;
                    extra.obs = obs_builder.refresh(env);
                    extra.pi.assign(
                        static_cast<std::size_t>(arch_->peCount()), 0.0);
                    extra.pi[static_cast<std::size_t>(a)] = 1.0;
                    const auto out = env.step(a);
                    extra.reward = out.reward;
                    moves.push_back(std::move(extra));
                } else {
                    const auto out = env.step(a);
                    record.reward = out.reward;
                    moves.push_back(std::move(record));
                }
            }
            break;
        }

        if (action < 0)
            break;
        const mapper::StepOutcome out = env.step(action);
        record.reward = out.reward;
        moves.push_back(std::move(record));
    }

    outcome.success = env.success();
    outcome.envReward = env.totalReward();
    return outcome;
}

EpisodeStats
Trainer::absorbEpisode(SelfPlayOutcome outcome, std::int32_t episode)
{
    EpisodeStats stats;
    stats.episode = episode;
    stats.success = outcome.success;
    stats.reward = outcome.envReward +
                   (stats.success ? config_.mcts.successBonus
                                  : -config_.mcts.deadEndPenalty);
    stats.routingPenalty = outcome.envReward;

    std::vector<MoveRecord> &moves = outcome.moves;

    // --- Store (s, pi, r) groups ----------------------------------------
    const double final_bonus = stats.success
        ? config_.mcts.successBonus
        : -config_.mcts.deadEndPenalty;
    double suffix = final_bonus;
    for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
        suffix += it->reward;
        TrainingSample sample;
        sample.observation = std::move(it->obs);
        sample.pi = std::move(it->pi);
        sample.value = suffix * config_.mcts.valueScale;
        if (config_.augment && symmetries_.size() > 1) {
            // Identity is symmetries_[0]; add up to maxAugmentations
            // non-trivial orbit copies.
            const std::size_t extra = std::min(
                config_.maxAugmentations, symmetries_.size() - 1);
            for (std::size_t k = 1; k <= extra; ++k) {
                const auto &perm = symmetries_[
                    1 + rng_.uniformInt(symmetries_.size() - 1)];
                TrainingSample aug;
                aug.observation =
                    permuteObservation(sample.observation, perm);
                aug.pi.assign(sample.pi.size(), 0.0);
                for (std::size_t a = 0; a < sample.pi.size(); ++a)
                    aug.pi[static_cast<std::size_t>(
                        perm[a])] = sample.pi[a];
                aug.value = sample.value;
                replay_.push(std::move(aug));
            }
        }
        replay_.push(std::move(sample));
    }

    // --- Gradient updates ------------------------------------------------
    if (replay_.size() >= config_.minBufferForTraining) {
        if (!bufferFillAnnounced_) {
            inform(cat("replay buffer reached the training threshold (",
                       replay_.size(), " >= ",
                       config_.minBufferForTraining,
                       " samples); gradient updates begin"));
            bufferFillAnnounced_ = true;
        }
        for (std::int32_t u = 0; u < config_.updatesPerEpisode; ++u)
            trainStep(stats);
        if (config_.updatesPerEpisode > 0) {
            const auto d = static_cast<double>(config_.updatesPerEpisode);
            stats.totalLoss /= d;
            stats.valueLoss /= d;
            stats.policyLoss /= d;
        }
    }
    stats.learningRate = optimizer_->learningRate();

    publishEpisodeMetrics(stats, replay_.size());
    if (journal().enabled())
        emitEpisodeRecord(stats, replay_.priorityStats());
    if (!config_.statsJsonlPath.empty())
        appendStatsJsonl(config_.statsJsonlPath, stats);
    if (config_.progressEvery > 0 &&
        (stats.episode + 1) % config_.progressEvery == 0) {
        std::int32_t recent_ok = 0;
        const std::size_t window = std::min<std::size_t>(
            history_.size() + 1,
            static_cast<std::size_t>(config_.progressEvery));
        for (std::size_t i = history_.size() + 1 - window;
             i < history_.size(); ++i)
            recent_ok += history_[i].success ? 1 : 0;
        recent_ok += stats.success ? 1 : 0;
        inform(cat("episode ", stats.episode + 1, ": ", recent_ok, "/",
                   window, " recent successes, loss=", stats.totalLoss,
                   ", lr=", stats.learningRate));
    }

    history_.push_back(stats);
    return stats;
}

void
Trainer::trainStep(EpisodeStats &stats)
{
    static Counter &divergence_skips =
        metrics().counter("trainer.divergence_skips");

    const auto batch = replay_.sampleBatch(config_.batchSize, rng_);
    optimizer_->zeroGrad();

    double value_loss_acc = 0.0;
    double policy_loss_acc = 0.0;

    // Accumulate gradients sample by sample (batch = gradient average).
    const float inv_batch = 1.0f / static_cast<float>(batch.size());
    std::vector<nn::Value> losses;
    losses.reserve(batch.size());
    for (const TrainingSample *sample : batch) {
        const MapZeroNet::Output out = net_->forward(sample->observation);
        // (r - v)^2
        nn::Value target = nn::Value::constant(nn::Tensor(
            1, 1, {static_cast<float>(sample->value)}));
        nn::Value v_loss = nn::square(nn::sub(out.value, target));
        // -pi . log p  (only legal entries carry probability mass)
        nn::Value pi = nn::Value::constant(nn::Tensor(
            1, sample->pi.size(),
            std::vector<float>(sample->pi.begin(), sample->pi.end())));
        nn::Value p_loss =
            nn::scale(nn::sumAll(nn::mulElem(pi, out.logPolicy)), -1.0f);

        value_loss_acc += static_cast<double>(v_loss.item());
        policy_loss_acc += static_cast<double>(p_loss.item());

        nn::Value loss =
            nn::scale(nn::add(v_loss, p_loss), inv_batch);
        losses.push_back(loss);
    }
    // Sum into a single scalar loss and backprop once.
    nn::Value loss_sum = losses.front();
    for (std::size_t i = 1; i < losses.size(); ++i)
        loss_sum = nn::add(loss_sum, losses[i]);
    loss_sum.backward();
    const float grad_norm =
        nn::clipGradNorm(net_->parameters(), config_.gradClip);
    stats.gradNorm =
        std::max(stats.gradNorm, static_cast<double>(grad_norm));

    // Divergence guard: a non-finite loss or gradient norm would write
    // NaN/Inf into the weights and Adam moments, poisoning the run from
    // this step onward. Skip the update (LR schedule included, so the
    // schedule position keeps matching the optimizer step count) and
    // surface the event through a counter instead.
    if (!std::isfinite(value_loss_acc + policy_loss_acc) ||
        !std::isfinite(grad_norm)) {
        divergence_skips.add();
        warn(cat("skipping a diverged gradient step (loss=",
                 value_loss_acc + policy_loss_acc, ", grad norm=",
                 grad_norm, ")"));
        return;
    }

    lrSchedule_.apply(*optimizer_);
    optimizer_->step();

    const auto n = static_cast<double>(batch.size());
    stats.valueLoss += value_loss_acc / n;
    stats.policyLoss += policy_loss_acc / n;
    stats.totalLoss += (value_loss_acc + policy_loss_acc) / n;
}

Trainer::EvalResult
Trainer::evaluateGreedy(const dfg::Dfg &dfg, std::int32_t ii) const
{
    EvalResult result;
    mapper::MapEnv env(dfg, *arch_, ii);
    ObservationBuilder obs_builder;
    while (!env.done()) {
        if (env.legalActionCount() == 0)
            break;
        const Observation &obs = obs_builder.refresh(env);
        const auto probs = net_->policyProbabilities(obs);
        std::int32_t best = -1;
        double best_p = -1.0;
        for (std::size_t a = 0; a < probs.size(); ++a) {
            if (obs.actionMask[a] && probs[a] > best_p) {
                best_p = probs[a];
                best = static_cast<std::int32_t>(a);
            }
        }
        if (best < 0)
            break;
        env.step(best);
    }
    result.success = env.success();
    result.routingPenalty = env.totalReward();
    return result;
}

std::vector<EpisodeStats>
Trainer::pretrain(std::int32_t episodes, std::int32_t min_nodes,
                  std::int32_t max_nodes, const Deadline &deadline)
{
    static Gauge &throughput =
        metrics().gauge("trainer.episodes_per_sec");

    svc::ensureTelemetryServer(config_.statsPort);

    // Curriculum: random DFGs sorted easy to hard (§3.6.2); the
    // ablation arm shuffles the same task set instead. Drawn from a
    // seed-derived stream (not rng_) so a resumed run regenerates the
    // exact task list without disturbing the restored training stream.
    Rng task_rng(Rng::deriveSeed(seed_, kCurriculumStream));
    auto tasks = dfg::curriculum(episodes, min_nodes, max_nodes,
                                 task_rng);
    if (!config_.curriculum)
        task_rng.shuffle(tasks);

    // episodeCounter_ is the resume position: a freshly constructed
    // trainer starts at task 0, one restored from a checkpoint skips
    // the episodes the saved run already absorbed.
    if (episodeCounter_ > static_cast<std::int32_t>(tasks.size()))
        fatal(cat("checkpoint is ", episodeCounter_, " episodes in, "
                  "but this pretrain run only has ", tasks.size()));
    if (episodeCounter_ > 0)
        inform(cat("resuming pretrain at episode ", episodeCounter_,
                   " of ", tasks.size()));

    const auto task_mii = [this](const dfg::Dfg &task) {
        return std::max(dfg::minimumIi(task, arch_->peCount(),
                                       arch_->memoryIssueCapacity()),
                        1);
    };
    const auto periodic_save = [this] {
        if (!config_.checkpointPath.empty() &&
            config_.checkpointEvery > 0 &&
            episodeCounter_ % config_.checkpointEvery == 0)
            saveCheckpoint(config_.checkpointPath);
    };
    const auto run_capped = [this](std::int32_t ran_this_run) {
        return config_.maxEpisodesPerRun > 0 &&
               ran_this_run >= config_.maxEpisodesPerRun;
    };

    const std::size_t jobs = resolveJobs(
        config_.selfPlayJobs < 0
            ? 1
            : static_cast<std::size_t>(config_.selfPlayJobs));
    const Timer wall;
    std::vector<EpisodeStats> out;

    if (jobs <= 1) {
        // Sequential path: bit-identical to the single-threaded trainer.
        while (episodeCounter_ < static_cast<std::int32_t>(tasks.size())) {
            if (deadline.expired() ||
                run_capped(static_cast<std::int32_t>(out.size())))
                break;
            const dfg::Dfg &task =
                tasks[static_cast<std::size_t>(episodeCounter_)];
            out.push_back(runEpisode(task, task_mii(task)));
            periodic_save();
        }
        if (!config_.checkpointPath.empty())
            saveCheckpoint(config_.checkpointPath);
        if (wall.seconds() > 0.0)
            throughput.set(static_cast<double>(out.size()) /
                           wall.seconds());
        return out;
    }

    // Parallel path: self-play rollouts of up to `jobs` episodes run
    // concurrently against a snapshot of the network, with their leaf
    // evaluations coalesced into batched forward passes. Replay
    // insertion and gradient updates then run on this thread in
    // episode order, so weights never move underneath a rollout and a
    // run is a pure function of (seed, jobs).
    ThreadPool pool(jobs);
    EvalBatcher batcher(*net_, config_.evalBatchCap);
    inform(cat("parallel self-play: ", jobs, " workers, eval batch cap ",
               config_.evalBatchCap));

    struct Slot {
        const dfg::Dfg *task = nullptr;
        std::int32_t episode = 0;
        SelfPlayOutcome outcome;
    };
    std::size_t next = static_cast<std::size_t>(episodeCounter_);
    while (next < tasks.size() && !deadline.expired() &&
           !run_capped(static_cast<std::int32_t>(out.size()))) {
        const std::size_t wave =
            std::min(jobs, tasks.size() - next);
        std::vector<Slot> slots(wave);
        for (std::size_t i = 0; i < wave; ++i) {
            slots[i].task = &tasks[next + i];
            slots[i].episode = episodeCounter_++;
        }
        parallelFor(pool, wave, [&](std::size_t i) {
            Slot &slot = slots[i];
            // Stream keyed by episode index, not worker id: random
            // choices depend on which episode is played, never on
            // which worker plays it.
            Rng worker_rng(Rng::deriveSeed(seed_, static_cast<
                std::uint64_t>(slot.episode)));
            EvalBatcher::Session session(batcher);
            slot.outcome =
                runSelfPlay(*slot.task, task_mii(*slot.task),
                            slot.episode, batcher, worker_rng);
        });
        for (auto &slot : slots)
            out.push_back(
                absorbEpisode(std::move(slot.outcome), slot.episode));
        next += wave;
        // Saves land on wave boundaries: a rollout's weights snapshot
        // depends on which wave it runs in, so resuming from inside a
        // wave could not replay the original run bit-identically. A
        // wave can step over a checkpointEvery multiple without
        // landing on it, so save whenever one was crossed.
        if (!config_.checkpointPath.empty() &&
            config_.checkpointEvery > 0 &&
            episodeCounter_ / config_.checkpointEvery !=
                (episodeCounter_ - static_cast<std::int32_t>(wave)) /
                    config_.checkpointEvery)
            saveCheckpoint(config_.checkpointPath);
    }
    if (!config_.checkpointPath.empty())
        saveCheckpoint(config_.checkpointPath);
    if (wall.seconds() > 0.0)
        throughput.set(static_cast<double>(out.size()) / wall.seconds());
    return out;
}

} // namespace mapzero::rl
