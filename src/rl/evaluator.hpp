/**
 * @file
 * Network evaluation services for the search code.
 *
 * MCTS and the guided DFS never call MapZeroNet::forward directly any
 * more; they go through an Evaluator. DirectEvaluator is the trivial
 * passthrough. EvalBatcher coalesces leaf-evaluation requests from
 * several concurrent searches (root-parallel compiler restarts,
 * parallel self-play workers) into one MapZeroNet::forwardBatch call,
 * which amortizes the per-pass graph-construction overhead into larger
 * dense operations.
 *
 * Determinism contract: forwardBatch is bit-identical per observation
 * regardless of batch composition (see network.hpp), so a search
 * served by an EvalBatcher computes exactly what it would have computed
 * alone - batching changes throughput, never results.
 */

#ifndef MAPZERO_RL_EVALUATOR_HPP
#define MAPZERO_RL_EVALUATOR_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytecache.hpp"
#include "rl/network.hpp"

namespace mapzero::rl {

/**
 * Thread-safe sharded LRU cache of network outputs keyed by
 * observation.
 *
 * MCTS revisits tree nodes constantly (every simulation re-descends the
 * same prefix) and portfolio restarts re-reach earlier states after
 * backtracking, so identical observations are evaluated many times per
 * compile. The key is the canonical byte encoding of the observation -
 * features, metadata, action mask, both edge lists, and the arch
 * geometry signature - which is exactly the (placement state, current
 * node, II, fabric) tuple the network conditions on, so a hit can never
 * alias two distinct states and the cached output is bit-identical to a
 * fresh forward pass (forward is a pure function of the observation).
 * Caching therefore changes throughput, never results.
 *
 * Storage is a ShardedByteCache (modula hash dispatch over N
 * open-addressing shards, each with its own lock and exact LRU), so
 * concurrent portfolio restarts no longer serialize on one mutex.
 * Small capacities collapse to a single shard, which keeps global LRU
 * order exact for tests and tiny configurations. Capacity 0 disables
 * the cache. Re-inserting an existing key refreshes its recency but
 * keeps the stored value (outputs are pure functions of the key).
 *
 * Stored outputs are deep copies on plain heap tensors, never
 * arena-backed (see TensorArena's lifetime rules), so one cache can
 * outlive any number of worker threads and be shared between them.
 *
 * Publishes "eval_cache.hits" / "eval_cache.misses" /
 * "eval_cache.evictions" (legacy names) plus the service-plane aliases
 * "cache.shard_hits" / "cache.shard_misses".
 */
class EvalCache
{
  public:
    /** @param capacity max cached entries (0 disables the cache) */
    explicit EvalCache(std::size_t capacity = kDefaultCapacity);

    /** Canonical byte encoding of @p obs (the cache key). */
    static std::string keyOf(const Observation &obs);

    /**
     * Copy the entry for @p key into @p out and mark it most recently
     * used. Returns false (and counts a miss) when absent.
     */
    bool lookup(const std::string &key, MapZeroNet::Output &out);

    /**
     * Store @p out under @p key (deep-copied off any arena). When the
     * key is already present only its recency is refreshed - outputs
     * are pure functions of the key, so the stored copy is kept.
     */
    void insert(const std::string &key, const MapZeroNet::Output &out);

    /** Entries currently cached. */
    std::size_t size() const { return cache_.size(); }
    std::size_t capacity() const { return cache_.capacity(); }
    /** Shards backing this cache (1 for small capacities, 0 disabled). */
    std::size_t shardCount() const { return cache_.shardCount(); }

    static constexpr std::size_t kDefaultCapacity = 8192;

  private:
    ShardedByteCache<MapZeroNet::Output> cache_;
};

/** Policy/value evaluation service over Observations. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Evaluate one observation (may block to form a batch). */
    virtual MapZeroNet::Output evaluate(const Observation &obs) = 0;

    /**
     * Evaluate several observations from ONE search (e.g. a virtual-loss
     * leaf wave). The default loops evaluate(); batching evaluators
     * submit the group as a single forward pass. Outputs are positional
     * and bit-identical to per-observation evaluate() calls.
     */
    virtual std::vector<MapZeroNet::Output>
    evaluateBatch(const std::vector<const Observation *> &batch);

    /** The network behind this evaluator. */
    virtual const MapZeroNet &network() const = 0;

    /** Policy probabilities (exp of the masked log-policy). */
    std::vector<double> policyProbabilities(const Observation &obs);
};

/**
 * Unbatched evaluation on the calling thread.
 *
 * Forward passes run under nn::InferenceGuard (no tape, arena-backed
 * buffers); an optional shared EvalCache short-circuits repeated
 * observations.
 */
class DirectEvaluator : public Evaluator
{
  public:
    explicit DirectEvaluator(const MapZeroNet &net,
                             std::shared_ptr<EvalCache> cache = nullptr)
        : net_(&net), cache_(std::move(cache))
    {}

    MapZeroNet::Output evaluate(const Observation &obs) override;

    const MapZeroNet &network() const override { return *net_; }

  private:
    const MapZeroNet *net_;
    std::shared_ptr<EvalCache> cache_;
};

/**
 * Coalesces evaluation requests from concurrent searches into batched
 * forward passes.
 *
 * Each participating thread holds an EvalBatcher::Session for the
 * duration of its search. evaluate() parks the request; the thread
 * that completes a batch (every live session has a request pending, or
 * the batch cap is reached) becomes the leader, runs forwardBatch for
 * all parked requests, and wakes the others. Sessions that finish
 * their search drop out via ~Session, which re-checks the flush
 * condition so stragglers are never left waiting for a peer that will
 * not come back.
 *
 * evaluateBatch() parks a whole leaf wave at once, so a single search
 * that gathers leaves under virtual loss can fill a forward batch by
 * itself - one restart saturates the network without peers.
 *
 * Publishes "eval_batcher.requests", "eval_batcher.batches",
 * "eval_batcher.batch_size", "eval_batcher.queue_wait_seconds", plus
 * the starvation split "eval_batcher.full_batches" /
 * "eval_batcher.partial_batches" (partial = the flush condition fired
 * below the batch cap, i.e. the batcher was starved of peers).
 *
 * With a single live session issuing single requests every batch is a
 * batch of one, i.e. the batcher degrades to DirectEvaluator behavior.
 */
class EvalBatcher : public Evaluator
{
  public:
    /**
     * @param net shared pre-trained network (forward passes only)
     * @param max_batch cap on observations per forward pass
     * @param cache optional shared output cache, consulted before a
     *        request parks (a hit skips the batch entirely) and filled
     *        by every completed batch
     */
    explicit EvalBatcher(const MapZeroNet &net,
                         std::size_t max_batch = 16,
                         std::shared_ptr<EvalCache> cache = nullptr);

    /** RAII registration of one concurrent search on the batcher. */
    class Session
    {
      public:
        explicit Session(EvalBatcher &batcher);
        ~Session();
        Session(const Session &) = delete;
        Session &operator=(const Session &) = delete;

      private:
        EvalBatcher *batcher_;
    };

    /** Must be called from a thread whose Session is alive. */
    MapZeroNet::Output evaluate(const Observation &obs) override;

    /** Must be called from a thread whose Session is alive. */
    std::vector<MapZeroNet::Output>
    evaluateBatch(const std::vector<const Observation *> &batch) override;

    const MapZeroNet &network() const override { return *net_; }

    std::size_t maxBatch() const { return maxBatch_; }

  private:
    struct Request {
        const Observation *obs = nullptr;
        /** Cache key, pre-computed by the requester (empty: no cache). */
        std::string key;
        MapZeroNet::Output out;
        /** Failure of the batch this request was served in, if any. */
        std::exception_ptr error;
        bool done = false;
    };

    /** True when the parked requests should be evaluated now. */
    bool readyLocked() const;

    /** Take the parked batch and evaluate it on the calling thread. */
    void runBatch(std::unique_lock<std::mutex> &lock);

    void addSession();
    void removeSession();

    const MapZeroNet *net_;
    std::size_t maxBatch_;
    std::shared_ptr<EvalCache> cache_;

    std::mutex mutex_;
    std::condition_variable wake_;
    /** Live sessions (threads that may still request evaluations). */
    std::size_t sessions_ = 0;
    /** Sessions currently inside evaluate()/evaluateBatch() waiting on
     *  (or leading) a batch. When every live session is blocked, nobody
     *  else is coming and the parked requests must be flushed. */
    std::size_t blocked_ = 0;
    std::vector<Request *> pending_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_EVALUATOR_HPP
