/**
 * @file
 * Network evaluation services for the search code.
 *
 * MCTS and the guided DFS never call MapZeroNet::forward directly any
 * more; they go through an Evaluator. DirectEvaluator is the trivial
 * passthrough. EvalBatcher coalesces leaf-evaluation requests from
 * several concurrent searches (root-parallel compiler restarts,
 * parallel self-play workers) into one MapZeroNet::forwardBatch call,
 * which amortizes the per-pass graph-construction overhead into larger
 * dense operations.
 *
 * Determinism contract: forwardBatch is bit-identical per observation
 * regardless of batch composition (see network.hpp), so a search
 * served by an EvalBatcher computes exactly what it would have computed
 * alone - batching changes throughput, never results.
 */

#ifndef MAPZERO_RL_EVALUATOR_HPP
#define MAPZERO_RL_EVALUATOR_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "rl/network.hpp"

namespace mapzero::rl {

/** Policy/value evaluation service over Observations. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Evaluate one observation (may block to form a batch). */
    virtual MapZeroNet::Output evaluate(const Observation &obs) = 0;

    /** The network behind this evaluator. */
    virtual const MapZeroNet &network() const = 0;

    /** Policy probabilities (exp of the masked log-policy). */
    std::vector<double> policyProbabilities(const Observation &obs);
};

/** Unbatched evaluation on the calling thread. */
class DirectEvaluator : public Evaluator
{
  public:
    explicit DirectEvaluator(const MapZeroNet &net) : net_(&net) {}

    MapZeroNet::Output
    evaluate(const Observation &obs) override
    {
        return net_->forward(obs);
    }

    const MapZeroNet &network() const override { return *net_; }

  private:
    const MapZeroNet *net_;
};

/**
 * Coalesces evaluation requests from concurrent searches into batched
 * forward passes.
 *
 * Each participating thread holds an EvalBatcher::Session for the
 * duration of its search. evaluate() parks the request; the thread
 * that completes a batch (every live session has a request pending, or
 * the batch cap is reached) becomes the leader, runs forwardBatch for
 * all parked requests, and wakes the others. Sessions that finish
 * their search drop out via ~Session, which re-checks the flush
 * condition so stragglers are never left waiting for a peer that will
 * not come back.
 *
 * Publishes "eval_batcher.requests", "eval_batcher.batches",
 * "eval_batcher.batch_size" and "eval_batcher.queue_wait_seconds" to
 * the metrics registry.
 *
 * With a single live session every request is a batch of one, i.e. the
 * batcher degrades to DirectEvaluator behavior.
 */
class EvalBatcher : public Evaluator
{
  public:
    /**
     * @param net shared pre-trained network (forward passes only)
     * @param max_batch cap on observations per forward pass
     */
    explicit EvalBatcher(const MapZeroNet &net,
                         std::size_t max_batch = 16);

    /** RAII registration of one concurrent search on the batcher. */
    class Session
    {
      public:
        explicit Session(EvalBatcher &batcher);
        ~Session();
        Session(const Session &) = delete;
        Session &operator=(const Session &) = delete;

      private:
        EvalBatcher *batcher_;
    };

    /** Must be called from a thread whose Session is alive. */
    MapZeroNet::Output evaluate(const Observation &obs) override;

    const MapZeroNet &network() const override { return *net_; }

    std::size_t maxBatch() const { return maxBatch_; }

  private:
    struct Request {
        const Observation *obs = nullptr;
        MapZeroNet::Output out;
        /** Failure of the batch this request was served in, if any. */
        std::exception_ptr error;
        bool done = false;
    };

    /** True when the parked requests should be evaluated now. */
    bool readyLocked() const;

    /** Take the parked batch and evaluate it on the calling thread. */
    void runBatch(std::unique_lock<std::mutex> &lock);

    void addSession();
    void removeSession();

    const MapZeroNet *net_;
    std::size_t maxBatch_;

    std::mutex mutex_;
    std::condition_variable wake_;
    /** Live sessions (threads that may still request evaluations). */
    std::size_t sessions_ = 0;
    /** Sessions currently being served by an in-flight batch. */
    std::size_t inFlight_ = 0;
    std::vector<Request *> pending_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_EVALUATOR_HPP
