/**
 * @file
 * The MapZero policy/value network (paper Fig. 5).
 *
 * Representation: two GAT encoders (one over the DFG, one over the CGRA
 * hardware graph of the current modulo slice) mean-pooled to graph
 * embeddings, an FC embedding of the current node's metadata, all
 * concatenated and fused by an MLP into the intermediate state vector.
 *
 * Prediction: a policy head emitting one logit per PE (invalid actions
 * masked in log-softmax) and a value head estimating the expected return
 * of the current state.
 */

#ifndef MAPZERO_RL_NETWORK_HPP
#define MAPZERO_RL_NETWORK_HPP

#include <memory>

#include "nn/gat.hpp"
#include "nn/layers.hpp"
#include "rl/features.hpp"

namespace mapzero::rl {

/** Network width configuration. */
struct NetworkConfig {
    std::size_t gatHiddenPerHead = 8;
    std::size_t gatHeads = 4;
    std::size_t gatLayers = 2;
    std::size_t metaEmbed = 16;
    std::size_t stateDim = 64;
    std::size_t policyHidden = 64;
    std::size_t valueHidden = 32;
};

/** Policy/value network over Observations. */
class MapZeroNet : public nn::Module
{
  public:
    /**
     * @param pe_count action-space size (the policy head's output width
     *        is determined by the PEA size, §4.5)
     * @param config layer widths
     * @param rng weight init
     */
    MapZeroNet(std::int32_t pe_count, NetworkConfig config, Rng &rng);

    /** Forward outputs. */
    struct Output {
        /** Masked log-probabilities over PEs, (1 x peCount). */
        nn::Value logPolicy;
        /** Scalar state-value estimate. */
        nn::Value value;
    };

    /** Run the network on one observation (forwardBatch of one). */
    Output forward(const Observation &obs) const;

    /**
     * Run the network on @p batch observations in one pass.
     *
     * The DFG and CGRA graphs are stacked into disjoint unions so each
     * GAT encoder runs once over the whole batch, mean pooling is a
     * single matmul against a constant block-diagonal pooling matrix,
     * and the FC trunk/heads process all rows together. Per-observation
     * outputs are bit-identical regardless of batch composition (graph
     * blocks never interact: attention is segmented per destination
     * vertex and pooling rows are zero outside their block), which is
     * what keeps parallel searches reproducible when their evaluation
     * requests are coalesced by rl::EvalBatcher.
     *
     * Safe to call concurrently from several threads: forward passes
     * only read the shared parameters.
     */
    std::vector<Output> forwardBatch(
        const std::vector<const Observation *> &batch) const;

    /** Policy probabilities as plain doubles (inference convenience). */
    std::vector<double> policyProbabilities(const Observation &obs) const;

    std::int32_t peCount() const { return peCount_; }
    const NetworkConfig &config() const { return config_; }

  private:
    std::int32_t peCount_;
    NetworkConfig config_;
    std::unique_ptr<nn::GatEncoder> dfgEncoder_;
    std::unique_ptr<nn::GatEncoder> cgraEncoder_;
    std::unique_ptr<nn::Linear> metaFc_;
    std::unique_ptr<nn::Mlp> trunk_;
    std::unique_ptr<nn::Mlp> policyHead_;
    std::unique_ptr<nn::Mlp> valueHead_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_NETWORK_HPP
