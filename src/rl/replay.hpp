/**
 * @file
 * Prioritized self-play replay buffer (paper §4.4): capacity 10,000,
 * batches of 32, and "already sampled trajectories will be given a lower
 * priority in the next round of sampling".
 */

#ifndef MAPZERO_RL_REPLAY_HPP
#define MAPZERO_RL_REPLAY_HPP

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "rl/features.hpp"

namespace mapzero::rl {

/** One (s, pi, r) training group (Algorithm 1 line 14). */
struct TrainingSample {
    Observation observation;
    /** Visit-count policy target over actions. */
    std::vector<double> pi;
    /** Scaled return target for the value head. */
    double value = 0.0;
};

/** Summary of the buffer's sampling priorities (diagnostics). */
struct PriorityStats {
    std::size_t size = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
};

/**
 * A replay buffer's complete contents, detached from the buffer's lock:
 * what trainer checkpoints persist and restore. `cursor` is the ring
 * eviction position so a restored buffer evicts in the same order the
 * original would have.
 */
struct ReplaySnapshot {
    std::vector<TrainingSample> samples;
    std::vector<double> priorities;
    std::size_t cursor = 0;
};

/**
 * Ring buffer with sampling priorities.
 *
 * Bookkeeping is guarded by an internal mutex so concurrent self-play
 * workers can push while other threads read size(). The pointers
 * returned by sampleBatch() reach into the buffer's storage and stay
 * valid only until the next push - train on a batch before generating
 * more data, or copy the samples out.
 */
class ReplayBuffer
{
  public:
    /** @param capacity maximum retained samples (paper: 10,000). */
    explicit ReplayBuffer(std::size_t capacity = 10000);

    /** Append a sample (evicts the oldest when full). Thread-safe. */
    void push(TrainingSample sample);

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Draw @p batch_size samples by priority (with replacement when the
     * buffer is smaller than the batch). Sampled entries get their
     * priority halved, floored at kPriorityFloor so long runs cannot
     * drive weights into denormals (which would starve every entry and
     * degrade weightedIndex to its uniform fallback).
     */
    std::vector<const TrainingSample *> sampleBatch(std::size_t batch_size,
                                                    Rng &rng);

    /** Lower bound a sampled entry's priority can be halved to. */
    static constexpr double kPriorityFloor = 1e-6;

    /**
     * Min/max/mean of the current priorities (a collapsed distribution
     * - everything at the floor - means sampling degraded to uniform).
     * Thread-safe.
     */
    PriorityStats priorityStats() const;

    /** Deep copy of the contents (checkpointing). Thread-safe. */
    ReplaySnapshot snapshot() const;

    /**
     * Replace the contents with @p snap (checkpoint resume); fatal()
     * when the snapshot exceeds this buffer's capacity or its
     * sample/priority counts disagree.
     */
    void restore(ReplaySnapshot snap);

  private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    mutable std::mutex mutex_;
    std::vector<TrainingSample> samples_;
    std::vector<double> priorities_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_REPLAY_HPP
