#include "rl/replay.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity == 0)
        fatal("replay buffer capacity must be positive");
}

std::size_t
ReplayBuffer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

void
ReplayBuffer::push(TrainingSample sample)
{
    // Occupancy gauge for live telemetry, independent of the trainer's
    // per-episode "trainer.replay_size" (which only updates when an
    // episode is absorbed, not per push).
    static Gauge &size_gauge = metrics().gauge("replay.size");
    constexpr double fresh_priority = 1.0;
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.size() < capacity_) {
        samples_.push_back(std::move(sample));
        priorities_.push_back(fresh_priority);
    } else {
        samples_[next_] = std::move(sample);
        priorities_[next_] = fresh_priority;
        next_ = (next_ + 1) % capacity_;
    }
    size_gauge.set(static_cast<double>(samples_.size()));
}

std::vector<const TrainingSample *>
ReplayBuffer::sampleBatch(std::size_t batch_size, Rng &rng)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        panic("sampling from an empty replay buffer");
    std::vector<const TrainingSample *> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
        const std::size_t idx = rng.weightedIndex(priorities_);
        batch.push_back(&samples_[idx]);
        priorities_[idx] = std::max(priorities_[idx] * 0.5,
                                    kPriorityFloor);
    }
    return batch;
}

PriorityStats
ReplayBuffer::priorityStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PriorityStats stats;
    stats.size = priorities_.size();
    if (priorities_.empty())
        return stats;
    double sum = 0.0;
    stats.min = stats.max = priorities_.front();
    for (const double p : priorities_) {
        stats.min = std::min(stats.min, p);
        stats.max = std::max(stats.max, p);
        sum += p;
    }
    stats.mean = sum / static_cast<double>(priorities_.size());
    return stats;
}

ReplaySnapshot
ReplayBuffer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ReplaySnapshot snap;
    snap.samples = samples_;
    snap.priorities = priorities_;
    snap.cursor = next_;
    return snap;
}

void
ReplayBuffer::restore(ReplaySnapshot snap)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (snap.samples.size() != snap.priorities.size())
        fatal(cat("replay snapshot has ", snap.samples.size(),
                  " samples but ", snap.priorities.size(),
                  " priorities"));
    if (snap.samples.size() > capacity_)
        fatal(cat("replay snapshot of ", snap.samples.size(),
                  " samples exceeds buffer capacity ", capacity_));
    if (snap.cursor >= capacity_ && !snap.samples.empty())
        fatal("replay snapshot cursor out of range");
    samples_ = std::move(snap.samples);
    priorities_ = std::move(snap.priorities);
    next_ = snap.cursor;
}

} // namespace mapzero::rl
