#include "rl/features.hpp"

#include "common/log.hpp"

namespace mapzero::rl {

namespace {

/** (x + 1) / (max + 1): maps -1 (none) to 0 and keeps ids in (0, 1]. */
float
idNorm(std::int32_t x, std::int32_t max_value)
{
    return static_cast<float>(x + 1) / static_cast<float>(max_value + 1);
}

} // namespace

Observation
observe(const mapper::MapEnv &env)
{
    const dfg::Dfg &dfg = env.dfg();
    const cgra::Architecture &arch = env.arch();
    const dfg::Schedule &schedule = env.schedule();
    const mapper::MappingState &state = env.state();

    const std::int32_t n = dfg.nodeCount();
    const std::int32_t p = arch.peCount();
    const std::int32_t sched_len = std::max(schedule.length(), 1);

    Observation obs;

    // Scheduling-order index per node.
    std::vector<std::int32_t> order_of(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < schedule.order.size(); ++i)
        order_of[static_cast<std::size_t>(schedule.order[i])] =
            static_cast<std::int32_t>(i);

    // Nodes per modulo slot (feature 9).
    std::vector<std::int32_t> slot_population(
        static_cast<std::size_t>(env.ii()), 0);
    for (std::int32_t t : schedule.moduloTime)
        ++slot_population[static_cast<std::size_t>(t)];

    obs.dfgFeatures = nn::Tensor(static_cast<std::size_t>(n),
                                 kDfgFeatureDim);
    for (dfg::NodeId v = 0; v < n; ++v) {
        const auto r = static_cast<std::size_t>(v);
        const std::int32_t slot =
            schedule.moduloTime[static_cast<std::size_t>(v)];
        obs.dfgFeatures.at(r, 0) = idNorm(v, n);
        obs.dfgFeatures.at(r, 1) =
            static_cast<float>(order_of[r]) / static_cast<float>(n);
        obs.dfgFeatures.at(r, 2) =
            static_cast<float>(schedule.time[r]) /
            static_cast<float>(sched_len);
        obs.dfgFeatures.at(r, 3) =
            static_cast<float>(slot) / static_cast<float>(env.ii());
        obs.dfgFeatures.at(r, 4) =
            static_cast<float>(dfg.inDegree(v)) / 8.0f;
        obs.dfgFeatures.at(r, 5) =
            static_cast<float>(dfg.outDegree(v)) / 8.0f;
        obs.dfgFeatures.at(r, 6) =
            static_cast<float>(dfg::opcodeIndex(dfg.node(v).opcode)) /
            static_cast<float>(dfg::kOpcodeCount);
        obs.dfgFeatures.at(r, 7) = dfg.hasSelfCycle(v) ? 1.0f : 0.0f;
        obs.dfgFeatures.at(r, 8) =
            static_cast<float>(
                slot_population[static_cast<std::size_t>(slot)]) /
            static_cast<float>(n);
        obs.dfgFeatures.at(r, 9) =
            idNorm(state.placed(v) ? state.placement(v).pe : -1, p);
    }

    obs.dfgEdges.reserve(dfg.edges().size());
    for (const auto &e : dfg.edges())
        obs.dfgEdges.emplace_back(e.src, e.dst);

    // Hardware graph of the current node's modulo slice.
    const dfg::NodeId current = env.currentNode();
    const std::int32_t slot =
        schedule.moduloTime[static_cast<std::size_t>(current)];
    obs.cgraFeatures = nn::Tensor(static_cast<std::size_t>(p),
                                  kCgraFeatureDim);
    for (cgra::PeId pe = 0; pe < p; ++pe) {
        const auto r = static_cast<std::size_t>(pe);
        const cgra::PeConfig &cfg = arch.pe(pe);
        obs.cgraFeatures.at(r, 0) = idNorm(pe, p);
        obs.cgraFeatures.at(r, 1) =
            static_cast<float>(arch.neighborsIn(pe).size()) / 16.0f;
        obs.cgraFeatures.at(r, 2) =
            static_cast<float>(arch.neighborsOut(pe).size()) / 16.0f;
        obs.cgraFeatures.at(r, 3) = cfg.logic ? 1.0f : 0.0f;
        obs.cgraFeatures.at(r, 4) = cfg.arithmetic ? 1.0f : 0.0f;
        obs.cgraFeatures.at(r, 5) = cfg.memory ? 1.0f : 0.0f;
        obs.cgraFeatures.at(r, 6) = idNorm(state.nodeAt(pe, slot), n);
    }

    obs.cgraEdges.reserve(
        static_cast<std::size_t>(env.mrrg().linkCount()));
    for (const auto &[src, dst] : arch.linkList())
        obs.cgraEdges.emplace_back(src, dst);

    // Metadata: the node's id and relevant features (§3.2.4) plus
    // mapping progress and action availability.
    obs.metadata = nn::Tensor(1, kMetadataDim);
    for (std::size_t c = 0; c < kDfgFeatureDim; ++c)
        obs.metadata.at(0, c) =
            obs.dfgFeatures.at(static_cast<std::size_t>(current), c);
    obs.metadata.at(0, kDfgFeatureDim) =
        static_cast<float>(env.stepIndex()) /
        static_cast<float>(std::max(env.totalSteps(), 1));
    const std::int32_t legal = env.legalActionCount();
    obs.metadata.at(0, kDfgFeatureDim + 1) =
        static_cast<float>(legal) / static_cast<float>(p);

    obs.actionMask = env.actionMask();
    return obs;
}

Observation
permuteObservation(const Observation &obs,
                   const std::vector<cgra::PeId> &perm)
{
    const std::size_t p = perm.size();
    if (obs.cgraFeatures.rows() != p)
        panic("permuteObservation: permutation size mismatch");

    Observation out = obs;
    const std::int32_t p_count = static_cast<std::int32_t>(p);

    // CGRA rows: row perm[pe] of the new observation describes what row
    // pe described, with the id feature rewritten.
    for (std::size_t pe = 0; pe < p; ++pe) {
        const auto target = static_cast<std::size_t>(perm[pe]);
        for (std::size_t c = 0; c < kCgraFeatureDim; ++c)
            out.cgraFeatures.at(target, c) = obs.cgraFeatures.at(pe, c);
        out.cgraFeatures.at(target, 0) =
            static_cast<float>(perm[pe] + 1) /
            static_cast<float>(p_count + 1);
        out.actionMask[target] = obs.actionMask[pe];
    }

    // DFG feature 10 (assigned PE id) remapped.
    for (std::size_t v = 0; v < obs.dfgFeatures.rows(); ++v) {
        const float old_norm = obs.dfgFeatures.at(v, 9);
        const auto old_pe = static_cast<std::int32_t>(
            old_norm * static_cast<float>(p_count + 1) + 0.5f) - 1;
        if (old_pe >= 0 && old_pe < p_count) {
            out.dfgFeatures.at(v, 9) =
                static_cast<float>(
                    perm[static_cast<std::size_t>(old_pe)] + 1) /
                static_cast<float>(p_count + 1);
        }
    }
    return out;
}

} // namespace mapzero::rl
