#include "rl/features.hpp"

#include <algorithm>

#include "common/bytecache.hpp"
#include "common/log.hpp"

namespace mapzero::rl {

namespace {

/** (x + 1) / (max + 1): maps -1 (none) to 0 and keeps ids in (0, 1]. */
float
idNorm(std::int32_t x, std::int32_t max_value)
{
    return static_cast<float>(x + 1) / static_cast<float>(max_value + 1);
}

/** degree / 8, clamped: fan-in beyond 8 saturates instead of leaving
 *  the normalized range and dominating the attention logits. */
float
degreeNorm(std::int32_t degree)
{
    return std::min(static_cast<float>(degree) / 8.0f, 1.0f);
}

} // namespace

void
ObservationBuilder::rebuild(const mapper::MapEnv &env)
{
    const dfg::Dfg &dfg = env.dfg();
    const cgra::Architecture &arch = env.arch();
    const dfg::Schedule &schedule = env.schedule();

    const std::int32_t n = dfg.nodeCount();
    const std::int32_t p = arch.peCount();
    const std::int32_t sched_len = std::max(schedule.length(), 1);

    env_ = &env;
    envInstance_ = env.instanceId();
    ii_ = env.ii();

    // Scheduling-order index per node.
    std::vector<std::int32_t> order_of(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < schedule.order.size(); ++i)
        order_of[static_cast<std::size_t>(schedule.order[i])] =
            static_cast<std::int32_t>(i);

    // Nodes per modulo slot (feature 9).
    std::vector<std::int32_t> slot_population(
        static_cast<std::size_t>(env.ii()), 0);
    for (std::int32_t t : schedule.moduloTime)
        ++slot_population[static_cast<std::size_t>(t)];

    obs_.dfgFeatures = nn::Tensor(static_cast<std::size_t>(n),
                                  kDfgFeatureDim);
    for (dfg::NodeId v = 0; v < n; ++v) {
        const auto r = static_cast<std::size_t>(v);
        const std::int32_t slot =
            schedule.moduloTime[static_cast<std::size_t>(v)];
        obs_.dfgFeatures.at(r, 0) = idNorm(v, n);
        obs_.dfgFeatures.at(r, 1) =
            static_cast<float>(order_of[r]) / static_cast<float>(n);
        obs_.dfgFeatures.at(r, 2) =
            static_cast<float>(schedule.time[r]) /
            static_cast<float>(sched_len);
        obs_.dfgFeatures.at(r, 3) =
            static_cast<float>(slot) / static_cast<float>(env.ii());
        obs_.dfgFeatures.at(r, 4) = degreeNorm(dfg.inDegree(v));
        obs_.dfgFeatures.at(r, 5) = degreeNorm(dfg.outDegree(v));
        obs_.dfgFeatures.at(r, 6) =
            static_cast<float>(dfg::opcodeIndex(dfg.node(v).opcode)) /
            static_cast<float>(dfg::kOpcodeCount);
        obs_.dfgFeatures.at(r, 7) = dfg.hasSelfCycle(v) ? 1.0f : 0.0f;
        obs_.dfgFeatures.at(r, 8) =
            static_cast<float>(
                slot_population[static_cast<std::size_t>(slot)]) /
            static_cast<float>(n);
        // Column 9 (assigned PE) is dynamic; refresh() fills it.
    }

    obs_.dfgEdges.clear();
    obs_.dfgEdges.reserve(dfg.edges().size());
    for (const auto &e : dfg.edges())
        obs_.dfgEdges.emplace_back(e.src, e.dst);

    obs_.cgraFeatures = nn::Tensor(static_cast<std::size_t>(p),
                                   kCgraFeatureDim);
    for (cgra::PeId pe = 0; pe < p; ++pe) {
        const auto r = static_cast<std::size_t>(pe);
        const cgra::PeConfig &cfg = arch.pe(pe);
        obs_.cgraFeatures.at(r, 0) = idNorm(pe, p);
        obs_.cgraFeatures.at(r, 1) =
            static_cast<float>(arch.neighborsIn(pe).size()) / 16.0f;
        obs_.cgraFeatures.at(r, 2) =
            static_cast<float>(arch.neighborsOut(pe).size()) / 16.0f;
        obs_.cgraFeatures.at(r, 3) = cfg.logic ? 1.0f : 0.0f;
        obs_.cgraFeatures.at(r, 4) = cfg.arithmetic ? 1.0f : 0.0f;
        obs_.cgraFeatures.at(r, 5) = cfg.memory ? 1.0f : 0.0f;
        // Column 6 (mapped node of the current slice) is dynamic.
    }

    obs_.cgraEdges.clear();
    obs_.cgraEdges.reserve(
        static_cast<std::size_t>(env.mrrg().linkCount()));
    for (const auto &[src, dst] : arch.linkList())
        obs_.cgraEdges.emplace_back(src, dst);

    obs_.metadata = nn::Tensor(1, kMetadataDim);
    obs_.archSignature = byteHash64(arch.canonicalBytes());
}

const Observation &
ObservationBuilder::refresh(const mapper::MapEnv &env)
{
    if (env_ != &env || envInstance_ != env.instanceId() ||
        ii_ != env.ii())
        rebuild(env);

    const dfg::Dfg &dfg = env.dfg();
    const mapper::MappingState &state = env.state();
    const std::int32_t n = dfg.nodeCount();
    const std::int32_t p = env.arch().peCount();

    // DFG feature 10: id of the assigned PE.
    for (dfg::NodeId v = 0; v < n; ++v)
        obs_.dfgFeatures.at(static_cast<std::size_t>(v), 9) =
            idNorm(state.placed(v) ? state.placement(v).pe : -1, p);

    // Hardware occupancy of the current node's modulo slice.
    const dfg::NodeId current = env.currentNode();
    const std::int32_t slot =
        env.schedule().moduloTime[static_cast<std::size_t>(current)];
    for (cgra::PeId pe = 0; pe < p; ++pe)
        obs_.cgraFeatures.at(static_cast<std::size_t>(pe), 6) =
            idNorm(state.nodeAt(pe, slot), n);

    // Metadata: the node's id and relevant features (§3.2.4) plus
    // mapping progress and action availability.
    for (std::size_t c = 0; c < kDfgFeatureDim; ++c)
        obs_.metadata.at(0, c) =
            obs_.dfgFeatures.at(static_cast<std::size_t>(current), c);
    obs_.metadata.at(0, kDfgFeatureDim) =
        static_cast<float>(env.stepIndex()) /
        static_cast<float>(std::max(env.totalSteps(), 1));
    const std::int32_t legal = env.legalActionCount();
    obs_.metadata.at(0, kDfgFeatureDim + 1) =
        static_cast<float>(legal) / static_cast<float>(p);

    obs_.actionMask = env.actionMask();
    return obs_;
}

Observation
observe(const mapper::MapEnv &env)
{
    ObservationBuilder builder;
    return builder.refresh(env);
}

Observation
permuteObservation(const Observation &obs,
                   const std::vector<cgra::PeId> &perm)
{
    const std::size_t p = perm.size();
    if (obs.cgraFeatures.rows() != p)
        panic("permuteObservation: permutation size mismatch");

    Observation out = obs;
    const std::int32_t p_count = static_cast<std::int32_t>(p);

    // CGRA rows: row perm[pe] of the new observation describes what row
    // pe described, with the id feature rewritten.
    for (std::size_t pe = 0; pe < p; ++pe) {
        const auto target = static_cast<std::size_t>(perm[pe]);
        for (std::size_t c = 0; c < kCgraFeatureDim; ++c)
            out.cgraFeatures.at(target, c) = obs.cgraFeatures.at(pe, c);
        out.cgraFeatures.at(target, 0) =
            static_cast<float>(perm[pe] + 1) /
            static_cast<float>(p_count + 1);
        out.actionMask[target] = obs.actionMask[pe];
    }

    // DFG feature 10 (assigned PE id) remapped.
    for (std::size_t v = 0; v < obs.dfgFeatures.rows(); ++v) {
        const float old_norm = obs.dfgFeatures.at(v, 9);
        const auto old_pe = static_cast<std::int32_t>(
            old_norm * static_cast<float>(p_count + 1) + 0.5f) - 1;
        if (old_pe >= 0 && old_pe < p_count) {
            out.dfgFeatures.at(v, 9) =
                static_cast<float>(
                    perm[static_cast<std::size_t>(old_pe)] + 1) /
                static_cast<float>(p_count + 1);
        }
    }
    return out;
}

} // namespace mapzero::rl
