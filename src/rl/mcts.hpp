/**
 * @file
 * Monte-Carlo tree search over mapping states (paper §3.5, Algorithm 1).
 *
 * AlphaZero-style search: edges store a prior P(s,a) from the network's
 * policy, a visit count N(s,a), and a mean action value Q(s,a); selection
 * maximizes the UCT score, leaves are evaluated by the network, and values
 * (step rewards accumulated along the trajectory plus the leaf estimate)
 * are backed up through the traversed edges.
 *
 * Following §3.5, "once a valid solution is found in the simulation phase
 * under the MII constraint, the whole mapping procedure ends": a
 * simulation that reaches a complete successful mapping short-circuits the
 * search and hands the caller the full action suffix.
 */

#ifndef MAPZERO_RL_MCTS_HPP
#define MAPZERO_RL_MCTS_HPP

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "rl/evaluator.hpp"
#include "rl/features.hpp"

namespace mapzero::rl {

/** Search hyper-parameters. */
struct MctsConfig {
    /** Tree expansions per move (paper: 100; 200 for 16x16 fabrics). */
    std::int32_t expansionsPerMove = 100;
    /** Exploration constant of the UCT rule. */
    double cExplore = 1.5;
    /** Dirichlet noise on root priors during self-play. */
    double dirichletAlpha = 0.3;
    /** Root prior noise fraction (0 disables - inference mode). */
    double noiseFraction = 0.0;
    /** Terminal bonus for a complete successful mapping. */
    double successBonus = 10.0;
    /** Terminal penalty for a dead end (no available PE, §3.1). */
    double deadEndPenalty = 100.0;
    /** Scale applied to returns before they feed Q and the value loss. */
    double valueScale = 0.01;
};

/** Result of running the search for one move. */
struct MctsMoveResult {
    /** Visit-count distribution over actions (the policy target). */
    std::vector<double> pi;
    /** Most-visited action. */
    std::int32_t bestAction = -1;
    /** Root value estimate (scaled return). */
    double rootValue = 0.0;
    /**
     * Visit-count increments applied to non-root tree nodes during this
     * move. Regression guard: interior nodes must accumulate visit
     * totals (they drive the sqrt(N) exploration term), so this grows
     * with the simulation budget on any search deeper than one ply.
     */
    std::int64_t interiorVisits = 0;
    /** Deepest simulation depth (in placements past the root). */
    std::int32_t maxDepth = 0;
    /** Simulations actually run (short-circuits stop early). */
    std::int32_t simulations = 0;
    /**
     * When a simulation completed the whole mapping successfully: the
     * action suffix (from the current state) that realizes it.
     */
    std::optional<std::vector<std::int32_t>> solvedSuffix;
};

/** MCTS driver bound to a network (via an evaluation service). */
class Mcts
{
  public:
    /** Evaluate leaves directly on @p net from the calling thread. */
    Mcts(const MapZeroNet &net, MctsConfig config);

    /**
     * Evaluate leaves through @p evaluator (e.g. an EvalBatcher shared
     * by concurrent searches). @p evaluator must outlive the search.
     */
    Mcts(Evaluator &evaluator, MctsConfig config);

    /**
     * Run expansionsPerMove simulations from the environment's current
     * state. The environment is stepped and undone internally and is
     * returned in its original state.
     */
    MctsMoveResult runFromCurrent(mapper::MapEnv &env, Rng &rng);

    const MctsConfig &config() const { return config_; }

  private:
    struct TreeNode;

    /** One simulation; returns true when it solved the whole mapping. */
    bool simulate(TreeNode &root, mapper::MapEnv &env, Rng &rng,
                  std::vector<std::int32_t> &solved_path,
                  std::int64_t &interior_visits,
                  std::int32_t &max_depth);

    /** Set when constructed from a bare network. */
    std::unique_ptr<DirectEvaluator> owned_;
    Evaluator *eval_;
    MctsConfig config_;
    /** Leaf observations patched incrementally instead of rebuilt. */
    ObservationBuilder obsBuilder_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_MCTS_HPP
