/**
 * @file
 * Monte-Carlo tree search over mapping states (paper §3.5, Algorithm 1).
 *
 * AlphaZero-style search: edges store a prior P(s,a) from the network's
 * policy, a visit count N(s,a), and a mean action value Q(s,a); selection
 * maximizes the UCT score, leaves are evaluated by the network, and values
 * (step rewards accumulated along the trajectory plus the leaf estimate)
 * are backed up through the traversed edges.
 *
 * Following §3.5, "once a valid solution is found in the simulation phase
 * under the MII constraint, the whole mapping procedure ends": a
 * simulation that reaches a complete successful mapping short-circuits the
 * search and hands the caller the full action suffix.
 *
 * Implementation notes (see DESIGN.md §15 "Search-core memory model"):
 *
 *  - The tree lives in a structure-of-arrays *arena*: nodes and edges are
 *    rows in contiguous parallel vectors indexed by uint32, children are
 *    (offset, count) spans in the edge arena, and a move/restart resets
 *    the arena in O(1) while keeping its capacity, so steady-state search
 *    performs no tree allocation at all.
 *
 *  - Simulations run in *waves* under virtual loss: one search descends
 *    the tree repeatedly, marking each selected edge with a temporary
 *    pessimistic loss so consecutive descents diverge, gathers up to
 *    leafBatch distinct leaves, and submits them as ONE
 *    Evaluator::evaluateBatch call. Virtual losses are reverted during
 *    backup. Leaves are expanded in collection order and the collection
 *    order is deterministic (strict UCT tie-break on the lowest edge
 *    index), so for a fixed config the search is bit-identical run to
 *    run and across any jobs count (the jobs=1 ≡ jobs=N contract);
 *    leafBatch=1 reproduces the classic sequential search exactly,
 *    while larger batches deterministically trade a slightly different
 *    (virtual-loss-diverged) leaf order for throughput.
 *
 *  - Steps are memoized: the environment state at a tree node is a pure
 *    function of the action path, so the routes committed the first time
 *    an edge is traversed are recorded and replayed verbatim on
 *    re-traversal (mapper::StepRecord), skipping the router search.
 */

#ifndef MAPZERO_RL_MCTS_HPP
#define MAPZERO_RL_MCTS_HPP

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "rl/evaluator.hpp"
#include "rl/features.hpp"

namespace mapzero::rl {

class TranspositionTable;

/** Search hyper-parameters. */
struct MctsConfig {
    /** Tree expansions per move (paper: 100; 200 for 16x16 fabrics). */
    std::int32_t expansionsPerMove = 100;
    /** Exploration constant of the UCT rule. */
    double cExplore = 1.5;
    /** Dirichlet noise on root priors during self-play. */
    double dirichletAlpha = 0.3;
    /** Root prior noise fraction (0 disables - inference mode). */
    double noiseFraction = 0.0;
    /** Terminal bonus for a complete successful mapping. */
    double successBonus = 10.0;
    /** Terminal penalty for a dead end (no available PE, §3.1). */
    double deadEndPenalty = 100.0;
    /** Scale applied to returns before they feed Q and the value loss. */
    double valueScale = 0.01;
    /**
     * Distinct leaves gathered under virtual loss per network call.
     * 1 reproduces the classic sequential search; larger values fill
     * forwardBatch from a single restart. Any value is deterministic
     * and independent of the jobs count (see file header).
     */
    std::int32_t leafBatch = 16;
    /**
     * Pessimistic value (in unscaled return units) an in-flight edge
     * carries until its leaf evaluation lands; steers concurrent
     * descents of one wave apart.
     */
    double virtualLossValue = 100.0;
    /**
     * Optional shared transposition table. The arena-local memos are
     * keyed by environment instance; this table is keyed canonically
     * (DFG hash, arch hash, II, action prefix), so independent
     * restarts searching the same episode exchange expansions and
     * step records. Hits are bit-identical to the computation they
     * replace (see transposition.hpp), so sharing never changes a
     * search decision. nullptr disables.
     */
    std::shared_ptr<TranspositionTable> transposition;
};

/** Result of running the search for one move. */
struct MctsMoveResult {
    /** Visit-count distribution over actions (the policy target). */
    std::vector<double> pi;
    /** Most-visited action. */
    std::int32_t bestAction = -1;
    /** Root value estimate (scaled return). */
    double rootValue = 0.0;
    /**
     * Visit-count increments applied to non-root tree nodes during this
     * move. Regression guard: interior nodes must accumulate visit
     * totals (they drive the sqrt(N) exploration term), so this grows
     * with the simulation budget on any search deeper than one ply.
     */
    std::int64_t interiorVisits = 0;
    /** Deepest simulation depth (in placements past the root). */
    std::int32_t maxDepth = 0;
    /** Simulations actually run (short-circuits stop early). */
    std::int32_t simulations = 0;
    /** Network forward calls (batched: one per leaf wave). */
    std::int32_t netCalls = 0;
    /** Leaves evaluated by those calls (netLeaves/netCalls = fill). */
    std::int32_t netLeaves = 0;
    /** Tree nodes allocated in the arena for this move. */
    std::int32_t treeNodes = 0;
    /** Arena footprint (capacity bytes) after this move. */
    std::size_t arenaBytes = 0;
    /**
     * When a simulation completed the whole mapping successfully: the
     * action suffix (from the current state) that realizes it.
     */
    std::optional<std::vector<std::int32_t>> solvedSuffix;
};

/** MCTS driver bound to a network (via an evaluation service). */
class Mcts
{
  public:
    /** Evaluate leaves directly on @p net from the calling thread. */
    Mcts(const MapZeroNet &net, MctsConfig config);

    /**
     * Evaluate leaves through @p evaluator (e.g. an EvalBatcher shared
     * by concurrent searches). @p evaluator must outlive the search.
     */
    Mcts(Evaluator &evaluator, MctsConfig config);

    ~Mcts();
    Mcts(const Mcts &) = delete;
    Mcts &operator=(const Mcts &) = delete;

    /**
     * Run expansionsPerMove simulations from the environment's current
     * state. The environment is stepped and undone internally and is
     * returned in its original state. The tree arena is rewound (not
     * freed) on entry, so repeated moves reuse its capacity.
     */
    MctsMoveResult runFromCurrent(mapper::MapEnv &env, Rng &rng);

    const MctsConfig &config() const { return config_; }

    /** Capacity snapshot of the arena (for reuse tests and gauges). */
    struct ArenaStats {
        std::size_t nodeCapacity = 0;
        std::size_t edgeCapacity = 0;
        std::size_t memoCapacity = 0;
        /** Total capacity bytes across all columns. */
        std::size_t bytes = 0;
    };
    ArenaStats arenaStats() const;

  private:
    struct Arena;

    /** Set when constructed from a bare network. */
    std::unique_ptr<DirectEvaluator> owned_;
    Evaluator *eval_;
    MctsConfig config_;
    /** Leaf observations patched incrementally instead of rebuilt. */
    ObservationBuilder obsBuilder_;
    /** SoA tree storage, reused across moves and restarts. */
    std::unique_ptr<Arena> arena_;
};

} // namespace mapzero::rl

#endif // MAPZERO_RL_MCTS_HPP
