/**
 * @file
 * Human-readable rendering of mappings: an ASCII PE-grid per modulo
 * time slice, and a GraphViz overlay showing which PE hosts which DFG
 * node. Both are pure functions of a MappingState, used by the CLI and
 * the examples to make results inspectable.
 */

#ifndef MAPZERO_MAPPER_VISUALIZE_HPP
#define MAPZERO_MAPPER_VISUALIZE_HPP

#include <string>

#include "mapper/mapping.hpp"

namespace mapzero::mapper {

/**
 * ASCII art: one PE grid per modulo slice. Occupied cells show the
 * hosted node as "<id>:<opcode>", free cells show dots.
 */
std::string renderMappingGrid(const MappingState &state);

/**
 * GraphViz digraph of the mapped DFG: node labels carry the (PE, time)
 * coordinates, edge labels the route hop counts.
 */
std::string mappingToDot(const MappingState &state);

/**
 * Per-node placement table: "node opcode -> PE(row,col) @t route-hops".
 */
std::string renderPlacementTable(const MappingState &state);

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_VISUALIZE_HPP
