#include "mapper/router.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <queue>
#include <unordered_map>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero::mapper {

namespace {

std::atomic<bool> g_routerCrossCheck{[] {
    const char *env = std::getenv("MAPZERO_ROUTER_CROSSCHECK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

} // namespace

void
setRouterCrossCheck(bool on)
{
    g_routerCrossCheck.store(on, std::memory_order_relaxed);
}

bool
routerCrossCheck()
{
    return g_routerCrossCheck.load(std::memory_order_relaxed);
}

namespace {

/** Hot-loop instruments, resolved once (see metrics.hpp cost model). */
struct RouterMetrics {
    Counter &routesOk = metrics().counter("router.routes_committed");
    Counter &routeFailures = metrics().counter("router.route_failures");
    Counter &conflicts = metrics().counter("router.conflicts");
    Counter &wireHops = metrics().counter("router.wire_hops");

    static RouterMetrics &
    get()
    {
        static RouterMetrics instance;
        return instance;
    }
};

} // namespace

namespace {

/**
 * Dijkstra node for the register-state search. Equal costs are left to
 * the heap's internal order: which equal-cost route wins is therefore a
 * function of the exact push/pop sequence, and every fast path in this
 * file (start-bound early-outs, the memoized free-wire frontier) is
 * constructed to leave that sequence untouched, so optimized and plain
 * searches return bit-identical routes.
 */
struct QEntry {
    std::int32_t cost;
    std::int32_t state;

    bool operator>(const QEntry &other) const
    {
        return cost > other.cost;
    }
};

constexpr std::int32_t kUnvisited = -1;

} // namespace

Router::Router(MappingState &state)
    : state_(&state)
{
    frontiers_.resize(static_cast<std::size_t>(state.mrrg().ii()) *
                      static_cast<std::size_t>(state.mrrg().peCount()));
}

void
Router::wireBfs(cgra::PeId from, std::int32_t slot, dfg::NodeId owner,
                std::int32_t cycle, WireFrontier &out) const
{
    const cgra::Mrrg &mrrg = state_->mrrg();
    const RoutingState &rs = state_->routing();
    const auto pe_count = static_cast<std::size_t>(mrrg.peCount());
    out.hops.assign(pe_count, kUnvisited);
    out.via.assign(pe_count, -1);
    std::queue<cgra::PeId> q;
    out.hops[static_cast<std::size_t>(from)] = 0;
    q.push(from);
    while (!q.empty()) {
        const cgra::PeId u = q.front();
        q.pop();
        for (cgra::LinkId l : mrrg.linksOut(u)) {
            const cgra::PeId v = mrrg.link(l).second;
            if (out.hops[static_cast<std::size_t>(v)] != kUnvisited)
                continue;
            if (!rs.wireAvailable(l, slot, owner, cycle))
                continue;
            out.hops[static_cast<std::size_t>(v)] =
                out.hops[static_cast<std::size_t>(u)] + 1;
            out.via[static_cast<std::size_t>(v)] = l;
            q.push(v);
        }
    }
}

const Router::WireFrontier &
Router::freeWireFrontier(cgra::PeId from, std::int32_t slot) const
{
    const cgra::Mrrg &mrrg = state_->mrrg();
    WireFrontier &entry = frontiers_[
        static_cast<std::size_t>(slot) *
            static_cast<std::size_t>(mrrg.peCount()) +
        static_cast<std::size_t>(from)];
    const auto epoch = static_cast<std::int64_t>(
        state_->routing().wireEpoch(slot));
    if (entry.epoch != epoch) {
        // Owner -1 matches nothing, so availability means "wire free";
        // the cycle argument is then irrelevant (any cycle of this
        // modulo slot sees the same free set).
        wireBfs(from, slot, -1, 0, entry);
        entry.epoch = epoch;
    }
    return entry;
}

namespace {

/**
 * A route is committable only if it never needs one modulo resource at
 * two different absolute times (that would require the physical slot to
 * hold two iterations' values) and every resource is free or already
 * carries exactly this (owner, time) value.
 */
bool
routeSelfConsistent(const cgra::Mrrg &mrrg, const RoutingState &rs,
                    const Route &route, dfg::NodeId owner)
{
    std::unordered_map<std::int64_t, std::int32_t> reg_times;
    for (const RegHold &h : route.regHolds) {
        if (!rs.regAvailable(h.pe, mrrg.slotOf(h.time), owner, h.time))
            return false;
        const std::int64_t key = mrrg.regIndex(h.pe, mrrg.slotOf(h.time));
        const auto [it, inserted] = reg_times.emplace(key, h.time);
        if (!inserted && it->second != h.time)
            return false;
    }
    std::unordered_map<std::int64_t, std::int32_t> wire_times;
    for (const WireUse &w : route.wires) {
        if (!rs.wireAvailable(w.link, mrrg.slotOf(w.time), owner, w.time))
            return false;
        const std::int64_t key =
            mrrg.wireIndex(w.link, mrrg.slotOf(w.time));
        const auto [it, inserted] = wire_times.emplace(key, w.time);
        if (!inserted && it->second != w.time)
            return false;
    }
    return true;
}

} // namespace

std::optional<Route>
Router::findRoute(std::int32_t edge_index) const
{
    const dfg::DfgEdge &edge =
        state_->dfg().edges()[static_cast<std::size_t>(edge_index)];
    const Placement &src_p = state_->placement(edge.src);
    const Placement &dst_p = state_->placement(edge.dst);
    if (!src_p.valid() || !dst_p.valid())
        panic(cat("routing edge ", edge_index,
                  " with unplaced endpoint"));

    // Constant operands travel through configuration, not the network
    // (consumer PEs have five constant units each, §4.1.1): trivially
    // routed with no resources.
    if (state_->dfg().node(edge.src).opcode == dfg::Opcode::Const)
        return Route{};

    const std::int32_t ii = state_->mrrg().ii();
    const std::int32_t t_produce = src_p.time;
    const std::int32_t t_consume = dst_p.time + ii * edge.distance;
    if (t_consume <= t_produce)
        return std::nullopt; // schedule violated; cannot route backward

    // A value held longer than every modulo register slot could ever
    // allow is infeasible regardless of path.
    if (t_consume - t_produce >
        ii * (state_->mrrg().peCount() + 2)) {
        return std::nullopt;
    }

    const bool multi_hop = state_->mrrg().arch().isMultiHop();
    auto route = multi_hop
        ? searchMultiHop(edge, t_produce, t_consume)
        : searchSingleHop(edge, t_produce, t_consume, true);
    if (!multi_hop && routerCrossCheck()) {
        const auto full =
            searchSingleHop(edge, t_produce, t_consume, false);
        if (route != full)
            panic(cat("router cross-check: pruned search diverged from "
                      "full search on edge ", edge_index, " (pruned ",
                      route ? "found" : "none", ", full ",
                      full ? "found" : "none", ")"));
    }
    if (route && !routeSelfConsistent(state_->mrrg(), state_->routing(),
                                      *route, edge.src)) {
        // The search found a path, but committing it would double-book
        // a modulo resource: a routing conflict in the paper's sense.
        RouterMetrics::get().conflicts.add();
        return std::nullopt;
    }
    return route;
}

std::optional<Route>
Router::searchSingleHop(const dfg::DfgEdge &edge, std::int32_t t_produce,
                        std::int32_t t_consume, bool prune) const
{
    const cgra::Mrrg &mrrg = state_->mrrg();
    const RoutingState &rs = state_->routing();
    const std::int32_t pe_count = mrrg.peCount();
    const cgra::PeId src_pe = state_->placement(edge.src).pe;
    const cgra::PeId dst_pe = state_->placement(edge.dst).pe;

    // States: (pe, t) for t in [t_produce, t_consume - 1].
    const std::int32_t window = t_consume - t_produce;

    // Admissible start bound on the static link-hop distance: the value
    // can traverse at most one link per cycle (window cycles, delivery
    // link included), so a destination farther than the window - or not
    // reachable at all - can never be reached and the full search would
    // only prove the same nullopt slowly. States inside a feasible
    // search are never skipped, so when a route exists the push/pop
    // sequence (and therefore the chosen route) is bit-identical to the
    // unpruned search.
    if (prune) {
        const std::int32_t d0 = mrrg.hopDistance(src_pe, dst_pe);
        if (d0 < 0 || d0 > window)
            return std::nullopt;
    }
    const std::int32_t n_states = window * pe_count;
    auto state_id = [&](cgra::PeId pe, std::int32_t t) {
        return (t - t_produce) * pe_count + pe;
    };
    std::vector<std::int32_t> dist(static_cast<std::size_t>(n_states),
                                   kUnvisited);
    std::vector<std::int32_t> prev(static_cast<std::size_t>(n_states),
                                   kUnvisited);

    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    const std::int32_t start = state_id(src_pe, t_produce);
    dist[static_cast<std::size_t>(start)] = 0;
    pq.push(QEntry{0, start});

    std::int32_t goal_state = kUnvisited;
    cgra::LinkId goal_link = -1;

    auto check_goal = [&](cgra::PeId pe, std::int32_t t) -> bool {
        if (t != t_consume - 1)
            return false;
        if (pe == dst_pe) {
            goal_link = -1;
            return true;
        }
        const cgra::LinkId link = mrrg.linkBetween(pe, dst_pe);
        if (link >= 0 &&
            rs.wireAvailable(link, mrrg.slotOf(t_consume), edge.src,
                             t_consume)) {
            goal_link = link;
            return true;
        }
        return false;
    };

    while (!pq.empty()) {
        const QEntry top = pq.top();
        pq.pop();
        const std::int32_t s = top.state;
        if (top.cost != dist[static_cast<std::size_t>(s)])
            continue;
        const cgra::PeId pe = s % pe_count;
        const std::int32_t t = t_produce + s / pe_count;

        if (check_goal(pe, t)) {
            goal_state = s;
            break;
        }
        if (t + 1 >= t_consume)
            continue;

        const std::int32_t nt = t + 1;
        const std::int32_t nslot = mrrg.slotOf(nt);
        auto relax = [&](cgra::PeId npe, std::int32_t cost) {
            const std::int32_t ns = state_id(npe, nt);
            const std::int32_t nd = top.cost + cost;
            auto &d = dist[static_cast<std::size_t>(ns)];
            if (d == kUnvisited || nd < d) {
                d = nd;
                prev[static_cast<std::size_t>(ns)] = s;
                pq.push(QEntry{nd, ns});
            }
        };

        // Hold in place.
        if (rs.regAvailable(pe, nslot, edge.src, nt))
            relax(pe, 1);
        // Move to a neighbor over one link.
        for (cgra::LinkId l : mrrg.linksOut(pe)) {
            const cgra::PeId npe = mrrg.link(l).second;
            if (rs.wireAvailable(l, nslot, edge.src, nt) &&
                rs.regAvailable(npe, nslot, edge.src, nt)) {
                relax(npe, 2);
            }
        }
    }

    if (goal_state == kUnvisited)
        return std::nullopt;

    Route route;
    // Reconstruct routing-register holds. The start state is the
    // producer's dedicated FU output register (implied by placement),
    // so it is not recorded as a routing-register hold.
    std::int32_t s = goal_state;
    while (s != kUnvisited) {
        const cgra::PeId pe = s % pe_count;
        const std::int32_t t = t_produce + s / pe_count;
        const std::int32_t p = prev[static_cast<std::size_t>(s)];
        if (s != start)
            route.regHolds.push_back(RegHold{pe, t});
        if (p != kUnvisited) {
            const cgra::PeId ppe = p % pe_count;
            if (ppe != pe) {
                const cgra::LinkId link = mrrg.linkBetween(ppe, pe);
                route.wires.push_back(WireUse{link, t});
                ++route.hops;
            }
        }
        s = p;
    }
    std::reverse(route.regHolds.begin(), route.regHolds.end());
    std::reverse(route.wires.begin(), route.wires.end());
    if (goal_link >= 0) {
        route.wires.push_back(WireUse{goal_link, t_consume});
        ++route.hops;
    }
    return route;
}

std::optional<Route>
Router::searchMultiHop(const dfg::DfgEdge &edge, std::int32_t t_produce,
                       std::int32_t t_consume) const
{
    const cgra::Mrrg &mrrg = state_->mrrg();
    const RoutingState &rs = state_->routing();
    const std::int32_t pe_count = mrrg.peCount();
    const cgra::PeId src_pe = state_->placement(edge.src).pe;
    const cgra::PeId dst_pe = state_->placement(edge.dst).pe;

    // Disconnected endpoints can never route, whatever the schedule.
    if (mrrg.hopDistance(src_pe, dst_pe) < 0)
        return std::nullopt;

    /**
     * One-cycle crossbar reachability from @p from during @p cycle: a
     * value leaving a register can traverse any number of available
     * crossbar links within the cycle. When the producer holds no wires
     * in the cycle's modulo slot, "available to the producer" equals
     * "free", so the per-slot memoized free-wire frontier answers the
     * query without a BFS; otherwise (multicast sharing in flight) an
     * owner-aware BFS runs into scratch. Both BFS orders are
     * deterministic over the same availability set, so the cached and
     * recomputed frontiers are interchangeable - which the cross-check
     * flag verifies on every cached use.
     */
    auto wire_reach = [&](cgra::PeId from,
                          std::int32_t cycle) -> const WireFrontier & {
        const std::int32_t slot = mrrg.slotOf(cycle);
        if (rs.ownerWireCount(edge.src, slot) == 0) {
            const WireFrontier &cached = freeWireFrontier(from, slot);
            if (routerCrossCheck()) {
                wireBfs(from, slot, edge.src, cycle, scratch_);
                if (scratch_.hops != cached.hops ||
                    scratch_.via != cached.via)
                    panic("router cross-check: cached free-wire "
                          "frontier diverged from owner-aware BFS");
            }
            return cached;
        }
        wireBfs(from, slot, edge.src, cycle, scratch_);
        return scratch_;
    };

    /** Collect the link sequence from @p from to @p to out of a BFS. */
    auto wire_path = [&](const WireFrontier &bfs, cgra::PeId from,
                         cgra::PeId to, std::int32_t cycle,
                         std::vector<WireUse> &out) {
        cgra::PeId cur = to;
        std::vector<WireUse> rev;
        while (cur != from) {
            const cgra::LinkId l = bfs.via[static_cast<std::size_t>(cur)];
            rev.push_back(WireUse{l, cycle});
            cur = mrrg.link(l).first;
        }
        out.insert(out.end(), rev.rbegin(), rev.rend());
    };

    const std::int32_t window = t_consume - t_produce;
    const std::int32_t n_states = window * pe_count;
    auto state_id = [&](cgra::PeId pe, std::int32_t t) {
        return (t - t_produce) * pe_count + pe;
    };
    std::vector<std::int32_t> dist(static_cast<std::size_t>(n_states),
                                   kUnvisited);
    std::vector<std::int32_t> prev(static_cast<std::size_t>(n_states),
                                   kUnvisited);

    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    const std::int32_t start = state_id(src_pe, t_produce);
    dist[static_cast<std::size_t>(start)] = 0;
    pq.push(QEntry{0, start});

    std::int32_t goal_state = kUnvisited;

    while (!pq.empty()) {
        const QEntry top = pq.top();
        pq.pop();
        const std::int32_t s = top.state;
        if (top.cost != dist[static_cast<std::size_t>(s)])
            continue;
        const cgra::PeId pe = s % pe_count;
        const std::int32_t t = t_produce + s / pe_count;

        if (t == t_consume - 1) {
            // Delivery cycle: either local register read or a crossbar
            // path during cycle t_consume.
            if (pe == dst_pe) {
                goal_state = s;
                break;
            }
            const WireFrontier &bfs = wire_reach(pe, t_consume);
            if (bfs.hops[static_cast<std::size_t>(dst_pe)] != kUnvisited) {
                goal_state = s;
                break;
            }
            continue;
        }

        const std::int32_t nt = t + 1;
        const std::int32_t nslot = mrrg.slotOf(nt);
        // Crossbar reach during cycle nt, then latch at (r, nt).
        const WireFrontier &bfs = wire_reach(pe, nt);
        for (cgra::PeId r = 0; r < pe_count; ++r) {
            const std::int32_t h = bfs.hops[static_cast<std::size_t>(r)];
            if (h == kUnvisited)
                continue;
            if (!rs.regAvailable(r, nslot, edge.src, nt))
                continue;
            const std::int32_t ns = state_id(r, nt);
            const std::int32_t nd = top.cost + 1 + h;
            auto &d = dist[static_cast<std::size_t>(ns)];
            if (d == kUnvisited || nd < d) {
                d = nd;
                prev[static_cast<std::size_t>(ns)] = s;
                pq.push(QEntry{nd, ns});
            }
        }
    }

    if (goal_state == kUnvisited)
        return std::nullopt;

    // Reconstruct: register holds plus the per-cycle wire paths. The BFS
    // is deterministic, so re-running it during reconstruction retraces
    // exactly the paths the search proved available.
    std::vector<std::int32_t> chain;
    for (std::int32_t s = goal_state; s != kUnvisited;
         s = prev[static_cast<std::size_t>(s)])
        chain.push_back(s);
    std::reverse(chain.begin(), chain.end());

    Route route;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const cgra::PeId pe = chain[i] % pe_count;
        const std::int32_t t = t_produce + chain[i] / pe_count;
        if (i > 0) // chain[0] is the producer's FU output register
            route.regHolds.push_back(RegHold{pe, t});
        if (i + 1 < chain.size()) {
            const cgra::PeId npe = chain[i + 1] % pe_count;
            const std::int32_t nt = t + 1;
            if (npe != pe) {
                const WireFrontier &bfs = wire_reach(pe, nt);
                wire_path(bfs, pe, npe, nt, route.wires);
                route.hops += bfs.hops[static_cast<std::size_t>(npe)];
            }
        }
    }
    const cgra::PeId last_pe = chain.back() % pe_count;
    if (last_pe != dst_pe) {
        const WireFrontier &bfs = wire_reach(last_pe, t_consume);
        wire_path(bfs, last_pe, dst_pe, t_consume, route.wires);
        route.hops += bfs.hops[static_cast<std::size_t>(dst_pe)];
    }
    return route;
}

bool
Router::routeEdge(std::int32_t edge_index)
{
    RouterMetrics &m = RouterMetrics::get();
    auto route = findRoute(edge_index);
    if (!route) {
        m.routeFailures.add();
        return false;
    }
    m.routesOk.add();
    m.wireHops.add(route->hops);
    state_->commitRoute(edge_index, std::move(*route));
    return true;
}

RouteResult
Router::routeIncidentEdges(
    dfg::NodeId node,
    std::vector<std::pair<std::int32_t, Route>> *recorded)
{
    RouteResult result;
    const dfg::Dfg &dfg = state_->dfg();

    auto try_route = [&](std::int32_t ei) {
        if (state_->edgeRouted(ei))
            return;
        const dfg::DfgEdge &e =
            dfg.edges()[static_cast<std::size_t>(ei)];
        if (!state_->placed(e.src) || !state_->placed(e.dst))
            return;
        RouterMetrics &m = RouterMetrics::get();
        auto route = findRoute(ei);
        if (route) {
            result.totalHops += route->hops;
            m.routesOk.add();
            m.wireHops.add(route->hops);
            if (recorded)
                recorded->emplace_back(ei, *route);
            state_->commitRoute(ei, std::move(*route));
            ++result.routed;
        } else {
            m.routeFailures.add();
            ++result.failed;
        }
    };

    for (std::int32_t ei : dfg.inEdges(node))
        try_route(ei);
    for (std::int32_t ei : dfg.outEdges(node)) {
        const dfg::DfgEdge &e = dfg.edges()[static_cast<std::size_t>(ei)];
        if (e.src == e.dst)
            continue; // self edge handled via inEdges
        try_route(ei);
    }
    return result;
}

void
Router::unrouteIncidentEdges(dfg::NodeId node)
{
    for (std::int32_t ei : state_->routedEdgesOf(node))
        state_->uncommitRoute(ei);
}

bool
Router::replayMapping(MappingState &state,
                      const std::vector<Placement> &placements)
{
    const dfg::Dfg &dfg = state.dfg();
    if (placements.size() != static_cast<std::size_t>(dfg.nodeCount()))
        return false;
    Router router(state);

    auto clear_all = [&]() {
        for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
            if (state.placed(v)) {
                router.unrouteIncidentEdges(v);
            }
        }
        for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
            if (state.placed(v))
                state.uncommitPlacement(v);
        }
    };

    // Pass 1: incremental order (how the tree-search engines route).
    bool ok = true;
    for (dfg::NodeId v : state.schedule().order) {
        const Placement &p = placements[static_cast<std::size_t>(v)];
        if (!p.valid() || !state.placementLegal(v, p.pe)) {
            ok = false;
            break;
        }
        state.commitPlacement(v, p.pe);
        if (!router.routeIncidentEdges(v).allRouted()) {
            ok = false;
            break;
        }
    }
    if (ok && state.complete())
        return true;

    // Pass 2: place everything, then route by edge index (how the
    // SA-family engines evaluate candidates).
    clear_all();
    for (dfg::NodeId v : state.schedule().order) {
        const Placement &p = placements[static_cast<std::size_t>(v)];
        if (!p.valid() || !state.placementLegal(v, p.pe))
            return false;
        state.commitPlacement(v, p.pe);
    }
    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        if (!router.routeEdge(ei))
            return false;
    }
    return state.complete();
}

} // namespace mapzero::mapper
