/**
 * @file
 * The CGRA mapping environment the RL agent (and the baseline mappers)
 * interact with.
 *
 * MDP definition (paper §3.3):
 *  - state: mapping under construction (DFG + CGRA occupancy + current
 *    node metadata), exposed through accessors the feature extractor uses;
 *  - action: choice of PE for the current node (invalid actions masked);
 *  - reward: negative routing penalty of the action - a small shaped cost
 *    proportional to route hops on success, kFailurePenalty (-100) per
 *    placement whose operands cannot be routed.
 *
 * Nodes are placed in scheduled order. undo() reverts the most recent
 * placement (and its routes), which is what backtracking (§3.6.2) and
 * MCTS tree traversal build on.
 */

#ifndef MAPZERO_MAPPER_ENVIRONMENT_HPP
#define MAPZERO_MAPPER_ENVIRONMENT_HPP

#include <memory>
#include <vector>

#include "mapper/failure.hpp"
#include "mapper/mapping.hpp"
#include "mapper/router.hpp"

namespace mapzero::mapper {

/** Result of one environment step. */
struct StepOutcome {
    /** Reward (negative routing penalty) for this action. */
    double reward = 0.0;
    /** Whether every incident edge routed successfully. */
    bool routedOk = true;
    /** Whether the episode ended (success or dead end). */
    bool done = false;
    /** Hops committed by this action's routes. */
    std::int32_t hops = 0;
};

/**
 * Everything one step committed, for verbatim replay. The environment
 * is deterministic and a state is a pure function of the action prefix
 * that built it, so a step recorded at some state can be replayed at
 * that same state (e.g. on MCTS tree re-traversal) without re-running
 * the router. Replaying against any other state is undefined; the
 * router cross-check flag verifies replays against fresh recomputation.
 */
struct StepRecord {
    StepOutcome outcome;
    /** (edge index, committed route) pairs in commit order. */
    std::vector<std::pair<std::int32_t, Route>> routes;
};

/** Environment configuration. */
struct EnvConfig {
    /** Reward per committed route hop (negated). */
    double hopCost = 0.02;
    /** Penalty for a placement with unroutable operands (paper: -100). */
    double failurePenalty = 100.0;
    /**
     * When true, a routing failure ends the episode immediately; when
     * false the failed placement stays (penalized) and mapping continues,
     * which matches the paper's "agent gets a final return based on
     * whether the mapping was successful".
     */
    bool stopOnRoutingFailure = true;
};

/**
 * Sequential placement environment over one (DFG, architecture, II)
 * triple.
 */
class MapEnv
{
  public:
    /**
     * @param dfg target DFG (must outlive the environment)
     * @param arch target fabric (must outlive the environment)
     * @param ii initiation interval; moduloSchedule(dfg, ii) must exist
     * @param config reward shaping knobs
     */
    MapEnv(const dfg::Dfg &dfg, const cgra::Architecture &arch,
           std::int32_t ii, EnvConfig config = {});

    /** Whether a modulo schedule exists for the given II. */
    static bool feasible(const dfg::Dfg &dfg, std::int32_t ii);

    /**
     * Whether the schedule can be placed at all: every modulo slot must
     * have enough function slots for its nodes, enough capability-
     * matching PEs per op class, and enough memory-issue capacity.
     * Mappers use this to reject an II instantly instead of exhausting
     * the placement search.
     */
    bool structurallyPlaceable() const;

    /** Restart the episode (empty mapping). */
    void reset();

    /**
     * Process-unique id of this environment instance. Lets incremental
     * consumers (rl::ObservationBuilder) detect that a pointer they
     * cached now refers to a different environment, even when a new
     * MapEnv reuses the old one's address.
     */
    std::uint64_t instanceId() const { return instanceId_; }

    const dfg::Dfg &dfg() const { return *dfg_; }
    const cgra::Architecture &arch() const { return *arch_; }
    const cgra::Mrrg &mrrg() const { return mrrg_; }
    std::int32_t ii() const { return mrrg_.ii(); }
    const dfg::Schedule &schedule() const { return state_->schedule(); }
    const MappingState &state() const { return *state_; }

    /** Index into the schedule order of the node being placed. */
    std::int32_t stepIndex() const { return stepIndex_; }
    std::int32_t totalSteps() const
    {
        return dfg_->nodeCount();
    }

    /** Node to place now (valid while !done()). */
    dfg::NodeId currentNode() const;

    bool done() const;
    /** All nodes placed and all edges routed. */
    bool success() const;
    /** Sum of rewards so far (the paper's routing-penalty total). */
    double totalReward() const { return totalReward_; }

    /** Legality mask over PEs for the current node. */
    std::vector<bool> actionMask() const;
    /** Count of legal actions. */
    std::int32_t legalActionCount() const;

    /**
     * Monotonic counter bumped by every state mutation (step / undo /
     * reset). Lets consumers cache state-derived values (the action
     * mask, observations) and revalidate in O(1).
     */
    std::uint64_t stateEpoch() const { return stateEpoch_; }

    /** Place the current node on @p pe; routes incident edges. */
    StepOutcome step(cgra::PeId pe);

    /**
     * step() that additionally captures the committed routes and the
     * outcome into @p record for later stepReplay().
     */
    StepOutcome step(cgra::PeId pe, StepRecord &record);

    /**
     * Re-apply a step previously captured by step(pe, record) at this
     * exact state: commits the placement and the recorded routes with
     * identical bookkeeping, skipping the route search. With the router
     * cross-check flag on, the step is recomputed instead and verified
     * against the record.
     */
    StepOutcome stepReplay(cgra::PeId pe, const StepRecord &record);

    /** Revert the latest placement; returns the node that was undone. */
    dfg::NodeId undo();

    /**
     * Record that the current node has no legal PE (search dead end,
     * §3.1's "no available PE exists"). Charges the node and the
     * occupied sites of its modulo slot in failureStats(). Callers
     * (agent DFS, MCTS simulation, baselines) invoke this where they
     * detect legalActionCount() == 0; the environment cannot, because
     * detection happens in the searcher's control flow.
     */
    void noteDeadEnd();

    /**
     * Charge a route failure to the node placed at schedule position
     * @p stepIndex on @p pe, without touching mapping state. The seed
     * search re-ran step() on every traversal of a failing edge, so
     * failure-attribution magnitudes were per-traversal; env-free
     * searches that replay recorded outcomes call this on each
     * re-traversal to keep post-mortem magnitudes identical
     * (stepReplay itself records nothing - a replay is mechanical
     * re-application, not new evidence).
     */
    void noteRouteFailure(std::int32_t stepIndex, cgra::PeId pe);

    /**
     * Failure evidence accumulated since construction. Survives
     * reset(), so over one map() attempt it aggregates every restart's
     * failures - exactly the "which node / which sites" attribution
     * AttemptResult::failure carries out of the engine.
     */
    const FailureStats &failureStats() const { return failureStats_; }

    /** Number of placements currently committed. */
    std::int32_t placedCount() const { return state_->placedCount(); }

  private:
    /** Monotonic id source behind instanceId(). */
    static std::uint64_t nextInstanceId();

    std::uint64_t instanceId_ = nextInstanceId();
    const dfg::Dfg *dfg_;
    const cgra::Architecture *arch_;
    cgra::Mrrg mrrg_;
    EnvConfig config_;
    /** Reward shaping + history bookkeeping shared by the step paths. */
    StepOutcome finishStep(dfg::NodeId node, cgra::PeId pe,
                           const RouteResult &routes);
    /** Recompute maskCache_/legalCount_ when stale. */
    void refreshMaskCache() const;

    std::unique_ptr<MappingState> state_;
    std::unique_ptr<Router> router_;
    std::int32_t stepIndex_ = 0;
    double totalReward_ = 0.0;
    bool failed_ = false;
    /** Placement history for undo; parallel reward history. */
    std::vector<dfg::NodeId> history_;
    std::vector<double> rewardHistory_;
    std::vector<bool> failHistory_;
    FailureStats failureStats_;
    std::uint64_t stateEpoch_ = 0;
    /** Action-mask cache, valid while maskEpoch_ == stateEpoch_. */
    mutable std::vector<bool> maskCache_;
    mutable std::int32_t legalCount_ = 0;
    mutable std::uint64_t maskEpoch_ = ~std::uint64_t{0};
};

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_ENVIRONMENT_HPP
