/**
 * @file
 * Failure attribution for mapping search (the flight recorder's raw
 * evidence).
 *
 * A failed attempt at a fixed II is normally summarized by a single
 * bit; the diagnostics layer (core/diagnostics.hpp) instead wants to
 * know *which* DFG node the search kept dying on and *which* (PE,
 * modulo-slot) sites were contested. FailureStats accumulates exactly
 * that, maintained by MapEnv on its failure paths only - a successful
 * placement records nothing, so the happy path stays untouched.
 *
 * The stats survive MapEnv::reset(): one MapEnv serves one
 * MapperBase::map() attempt (restarts included), so the accumulated
 * counts are per-attempt evidence ("mul7 stalled 30 of 32 restarts"),
 * copied into AttemptResult::failure by the engines.
 */

#ifndef MAPZERO_MAPPER_FAILURE_HPP
#define MAPZERO_MAPPER_FAILURE_HPP

#include <cstdint>
#include <vector>

namespace mapzero::mapper {

/** One contested (PE, modulo-slot) site and its failure-event count. */
struct CongestionSite {
    std::int32_t pe = -1;
    std::int32_t slot = -1;
    std::int64_t count = 0;
};

/** Failure evidence accumulated across one attempt's episodes. */
struct FailureStats {
    /** Modulo slots per PE (the II the attempt targeted). */
    std::int32_t ii = 0;
    /** Per node: placements whose operand routing failed. */
    std::vector<std::int64_t> routeFailures;
    /** Per node: times it had no legal PE when its turn came. */
    std::vector<std::int64_t> deadEnds;
    /** Per flat (pe * ii + slot) site: congestion events. */
    std::vector<std::int64_t> siteCounts;
    /** Total failure events (route failures + dead ends). */
    std::int64_t failureEvents = 0;
    /** Node of the very first failure event, -1 while clean. */
    std::int32_t firstFailNode = -1;

    /** Size the per-node/per-site tables (zeroing all counts). */
    void init(std::int32_t node_count, std::int32_t pe_count,
              std::int32_t ii_slots);

    void recordRouteFailure(std::int32_t node, std::int32_t pe,
                            std::int32_t slot);
    void recordDeadEnd(std::int32_t node);
    /** Charge @p (pe, slot) with blocking a dead-ended node. */
    void recordBlockedSite(std::int32_t pe, std::int32_t slot);

    /** Total failure events charged to @p node. */
    std::int64_t nodeFailures(std::int32_t node) const;

    /**
     * Node the search most often stalled on (route failures + dead
     * ends; ties break toward firstFailNode, then the lowest id).
     * -1 when no failure was recorded.
     */
    std::int32_t blamedNode() const;

    /** Up to @p n hottest sites, descending by count (zeroes omitted). */
    std::vector<CongestionSite> topSites(std::size_t n) const;

    /** Fold @p other's counts into this (portfolio aggregation). */
    void merge(const FailureStats &other);
};

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_FAILURE_HPP
