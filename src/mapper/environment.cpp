#include "mapper/environment.hpp"

#include <atomic>

#include "common/log.hpp"

namespace mapzero::mapper {

std::uint64_t
MapEnv::nextInstanceId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

MapEnv::MapEnv(const dfg::Dfg &dfg, const cgra::Architecture &arch,
               std::int32_t ii, EnvConfig config)
    : dfg_(&dfg), arch_(&arch), mrrg_(arch, ii), config_(config)
{
    auto schedule = dfg::moduloSchedule(dfg, ii,
                                        arch.memoryIssueCapacity());
    if (!schedule)
        fatal(cat("MapEnv: no modulo schedule for '", dfg.name(),
                  "' at II=", ii, " (II below RecMII)"));
    state_ = std::make_unique<MappingState>(dfg, mrrg_,
                                            std::move(*schedule));
    router_ = std::make_unique<Router>(*state_);
    failureStats_.init(dfg.nodeCount(), arch.peCount(), ii);
}

bool
MapEnv::feasible(const dfg::Dfg &dfg, std::int32_t ii)
{
    return dfg::moduloSchedule(dfg, ii).has_value();
}

bool
MapEnv::structurallyPlaceable() const
{
    const dfg::Schedule &s = state_->schedule();
    const std::int32_t ii_count = mrrg_.ii();

    // Per-slot demand by op class.
    std::vector<std::int32_t> total(static_cast<std::size_t>(ii_count),
                                    0);
    std::vector<std::int32_t> mem(static_cast<std::size_t>(ii_count), 0);
    std::vector<std::int32_t> logic(static_cast<std::size_t>(ii_count),
                                    0);
    for (dfg::NodeId v = 0; v < dfg_->nodeCount(); ++v) {
        const auto slot =
            static_cast<std::size_t>(s.moduloTime[
                static_cast<std::size_t>(v)]);
        ++total[slot];
        const auto cls = dfg::opClass(dfg_->node(v).opcode);
        if (cls == dfg::OpClass::Memory)
            ++mem[slot];
        else if (cls == dfg::OpClass::Logic)
            ++logic[slot];
    }

    std::int32_t logic_pes = 0;
    for (cgra::PeId p = 0; p < arch_->peCount(); ++p)
        logic_pes += arch_->pe(p).logic ? 1 : 0;
    const std::int32_t mem_cap = arch_->memoryIssueCapacity();
    const std::int32_t mem_pes = arch_->memoryPeCount();

    for (std::int32_t slot = 0; slot < ii_count; ++slot) {
        const auto sl = static_cast<std::size_t>(slot);
        if (total[sl] > arch_->peCount())
            return false;
        if (mem[sl] > std::min(mem_cap, mem_pes))
            return false;
        if (logic[sl] > logic_pes)
            return false;
    }
    return true;
}

void
MapEnv::reset()
{
    state_ = std::make_unique<MappingState>(*dfg_, mrrg_,
                                            state_->schedule());
    router_ = std::make_unique<Router>(*state_);
    stepIndex_ = 0;
    totalReward_ = 0.0;
    failed_ = false;
    history_.clear();
    rewardHistory_.clear();
    failHistory_.clear();
}

dfg::NodeId
MapEnv::currentNode() const
{
    if (done())
        panic("currentNode() on a finished episode");
    return schedule().order[static_cast<std::size_t>(stepIndex_)];
}

bool
MapEnv::done() const
{
    if (stepIndex_ >= dfg_->nodeCount())
        return true;
    if (failed_ && config_.stopOnRoutingFailure)
        return true;
    return false;
}

bool
MapEnv::success() const
{
    return state_->complete();
}

std::vector<bool>
MapEnv::actionMask() const
{
    std::vector<bool> mask(static_cast<std::size_t>(arch_->peCount()),
                           false);
    if (done())
        return mask;
    const dfg::NodeId node = currentNode();
    for (cgra::PeId pe = 0; pe < arch_->peCount(); ++pe)
        mask[static_cast<std::size_t>(pe)] =
            state_->placementLegal(node, pe);
    return mask;
}

std::int32_t
MapEnv::legalActionCount() const
{
    std::int32_t n = 0;
    for (bool legal : actionMask())
        n += legal ? 1 : 0;
    return n;
}

StepOutcome
MapEnv::step(cgra::PeId pe)
{
    if (done())
        panic("step() on a finished episode");
    const dfg::NodeId node = currentNode();
    if (!state_->placementLegal(node, pe))
        panic(cat("step(): illegal action PE ", pe, " for node ", node));

    state_->commitPlacement(node, pe);
    const RouteResult routes = router_->routeIncidentEdges(node);

    StepOutcome out;
    out.hops = routes.totalHops;
    out.routedOk = routes.allRouted();
    out.reward = -config_.hopCost * static_cast<double>(routes.totalHops);
    if (!routes.allRouted())
        out.reward -= config_.failurePenalty *
                      static_cast<double>(routes.failed);

    history_.push_back(node);
    rewardHistory_.push_back(out.reward);
    failHistory_.push_back(!routes.allRouted());
    totalReward_ += out.reward;
    ++stepIndex_;
    if (!routes.allRouted()) {
        failed_ = true;
        failureStats_.recordRouteFailure(
            node, pe,
            schedule().moduloTime[static_cast<std::size_t>(node)]);
    }
    // Dead end: some future node may already have no legal PE; that is
    // discovered when its turn comes (legalActionCount() == 0), matching
    // the paper's termination condition "no available PE exists".
    out.done = done();
    return out;
}

void
MapEnv::noteDeadEnd()
{
    if (done())
        panic("noteDeadEnd() on a finished episode");
    const dfg::NodeId node = currentNode();
    failureStats_.recordDeadEnd(node);
    // Charge the sites blocking it: every occupied function slot in the
    // node's modulo slice is a competitor for the PE it needed.
    const std::int32_t slot =
        schedule().moduloTime[static_cast<std::size_t>(node)];
    for (cgra::PeId pe = 0; pe < arch_->peCount(); ++pe) {
        if (state_->nodeAt(pe, slot) >= 0)
            failureStats_.recordBlockedSite(pe, slot);
    }
}

dfg::NodeId
MapEnv::undo()
{
    if (history_.empty())
        panic("undo() with no placements");
    const dfg::NodeId node = history_.back();
    history_.pop_back();
    router_->unrouteIncidentEdges(node);
    state_->uncommitPlacement(node);
    rewardHistory_.pop_back();
    // Recompute instead of subtracting so repeated undo/redo cycles
    // cannot accumulate floating-point drift.
    totalReward_ = 0.0;
    for (const double r : rewardHistory_)
        totalReward_ += r;
    failHistory_.pop_back();
    --stepIndex_;
    // Recompute the failure latch from the remaining history.
    failed_ = false;
    for (const bool f : failHistory_)
        failed_ = failed_ || f;
    return node;
}

} // namespace mapzero::mapper
