#include "mapper/environment.hpp"

#include <atomic>
#include <chrono>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace mapzero::mapper {

namespace {

/**
 * Book the wall time of one real routing call against the calling
 * thread's open trace stage. The clock reads are gated on an open
 * scope, so untraced episodes pay one thread-local load + branch.
 */
template <typename Fn>
auto
timedRoute(Fn &&route)
{
    if (!traceCountActive())
        return route();
    const auto start = std::chrono::steady_clock::now();
    auto result = route();
    traceCountAdd(
        TraceCount::RouteUs,
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    traceCountAdd(TraceCount::RouteCalls, 1);
    return result;
}

} // namespace

std::uint64_t
MapEnv::nextInstanceId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

MapEnv::MapEnv(const dfg::Dfg &dfg, const cgra::Architecture &arch,
               std::int32_t ii, EnvConfig config)
    : dfg_(&dfg), arch_(&arch), mrrg_(arch, ii), config_(config)
{
    auto schedule = dfg::moduloSchedule(dfg, ii,
                                        arch.memoryIssueCapacity());
    if (!schedule)
        fatal(cat("MapEnv: no modulo schedule for '", dfg.name(),
                  "' at II=", ii, " (II below RecMII)"));
    state_ = std::make_unique<MappingState>(dfg, mrrg_,
                                            std::move(*schedule));
    router_ = std::make_unique<Router>(*state_);
    failureStats_.init(dfg.nodeCount(), arch.peCount(), ii);
}

bool
MapEnv::feasible(const dfg::Dfg &dfg, std::int32_t ii)
{
    return dfg::moduloSchedule(dfg, ii).has_value();
}

bool
MapEnv::structurallyPlaceable() const
{
    const dfg::Schedule &s = state_->schedule();
    const std::int32_t ii_count = mrrg_.ii();

    // Per-slot demand by op class.
    std::vector<std::int32_t> total(static_cast<std::size_t>(ii_count),
                                    0);
    std::vector<std::int32_t> mem(static_cast<std::size_t>(ii_count), 0);
    std::vector<std::int32_t> logic(static_cast<std::size_t>(ii_count),
                                    0);
    for (dfg::NodeId v = 0; v < dfg_->nodeCount(); ++v) {
        const auto slot =
            static_cast<std::size_t>(s.moduloTime[
                static_cast<std::size_t>(v)]);
        ++total[slot];
        const auto cls = dfg::opClass(dfg_->node(v).opcode);
        if (cls == dfg::OpClass::Memory)
            ++mem[slot];
        else if (cls == dfg::OpClass::Logic)
            ++logic[slot];
    }

    std::int32_t logic_pes = 0;
    for (cgra::PeId p = 0; p < arch_->peCount(); ++p)
        logic_pes += arch_->pe(p).logic ? 1 : 0;
    const std::int32_t mem_cap = arch_->memoryIssueCapacity();
    const std::int32_t mem_pes = arch_->memoryPeCount();

    for (std::int32_t slot = 0; slot < ii_count; ++slot) {
        const auto sl = static_cast<std::size_t>(slot);
        if (total[sl] > arch_->peCount())
            return false;
        if (mem[sl] > std::min(mem_cap, mem_pes))
            return false;
        if (logic[sl] > logic_pes)
            return false;
    }
    return true;
}

void
MapEnv::reset()
{
    state_ = std::make_unique<MappingState>(*dfg_, mrrg_,
                                            state_->schedule());
    router_ = std::make_unique<Router>(*state_);
    stepIndex_ = 0;
    totalReward_ = 0.0;
    failed_ = false;
    history_.clear();
    rewardHistory_.clear();
    failHistory_.clear();
    ++stateEpoch_;
}

dfg::NodeId
MapEnv::currentNode() const
{
    if (done())
        panic("currentNode() on a finished episode");
    return schedule().order[static_cast<std::size_t>(stepIndex_)];
}

bool
MapEnv::done() const
{
    if (stepIndex_ >= dfg_->nodeCount())
        return true;
    if (failed_ && config_.stopOnRoutingFailure)
        return true;
    return false;
}

bool
MapEnv::success() const
{
    return state_->complete();
}

void
MapEnv::refreshMaskCache() const
{
    if (maskEpoch_ == stateEpoch_)
        return;
    maskCache_.assign(static_cast<std::size_t>(arch_->peCount()), false);
    legalCount_ = 0;
    if (!done()) {
        const dfg::NodeId node = currentNode();
        for (cgra::PeId pe = 0; pe < arch_->peCount(); ++pe) {
            const bool legal = state_->placementLegal(node, pe);
            maskCache_[static_cast<std::size_t>(pe)] = legal;
            legalCount_ += legal ? 1 : 0;
        }
    }
    maskEpoch_ = stateEpoch_;
}

std::vector<bool>
MapEnv::actionMask() const
{
    refreshMaskCache();
    return maskCache_;
}

std::int32_t
MapEnv::legalActionCount() const
{
    refreshMaskCache();
    return legalCount_;
}

StepOutcome
MapEnv::finishStep(dfg::NodeId node, cgra::PeId pe,
                   const RouteResult &routes)
{
    StepOutcome out;
    out.hops = routes.totalHops;
    out.routedOk = routes.allRouted();
    out.reward = -config_.hopCost * static_cast<double>(routes.totalHops);
    if (!routes.allRouted())
        out.reward -= config_.failurePenalty *
                      static_cast<double>(routes.failed);

    history_.push_back(node);
    rewardHistory_.push_back(out.reward);
    failHistory_.push_back(!routes.allRouted());
    totalReward_ += out.reward;
    ++stepIndex_;
    ++stateEpoch_;
    if (!routes.allRouted()) {
        failed_ = true;
        failureStats_.recordRouteFailure(
            node, pe,
            schedule().moduloTime[static_cast<std::size_t>(node)]);
    }
    // Dead end: some future node may already have no legal PE; that is
    // discovered when its turn comes (legalActionCount() == 0), matching
    // the paper's termination condition "no available PE exists".
    out.done = done();
    return out;
}

StepOutcome
MapEnv::step(cgra::PeId pe)
{
    if (done())
        panic("step() on a finished episode");
    const dfg::NodeId node = currentNode();
    if (!state_->placementLegal(node, pe))
        panic(cat("step(): illegal action PE ", pe, " for node ", node));

    state_->commitPlacement(node, pe);
    const RouteResult routes =
        timedRoute([&] { return router_->routeIncidentEdges(node); });
    return finishStep(node, pe, routes);
}

StepOutcome
MapEnv::step(cgra::PeId pe, StepRecord &record)
{
    if (done())
        panic("step() on a finished episode");
    const dfg::NodeId node = currentNode();
    if (!state_->placementLegal(node, pe))
        panic(cat("step(): illegal action PE ", pe, " for node ", node));

    record.routes.clear();
    state_->commitPlacement(node, pe);
    const RouteResult routes = timedRoute([&] {
        return router_->routeIncidentEdges(node, &record.routes);
    });
    record.outcome = finishStep(node, pe, routes);
    return record.outcome;
}

StepOutcome
MapEnv::stepReplay(cgra::PeId pe, const StepRecord &record)
{
    if (routerCrossCheck()) {
        // Debug mode: re-run the full step and verify the record matches
        // bit for bit, validating the "state is a pure function of the
        // action prefix" assumption the replay fast path relies on.
        StepRecord fresh;
        const StepOutcome out = step(pe, fresh);
        if (fresh.outcome.reward != record.outcome.reward ||
            fresh.outcome.routedOk != record.outcome.routedOk ||
            fresh.outcome.hops != record.outcome.hops ||
            fresh.routes.size() != record.routes.size())
            panic(cat("stepReplay cross-check: outcome diverged for PE ",
                      pe));
        for (std::size_t i = 0; i < fresh.routes.size(); ++i)
            if (fresh.routes[i].first != record.routes[i].first ||
                fresh.routes[i].second != record.routes[i].second)
                panic(cat("stepReplay cross-check: route diverged for "
                          "edge ",
                          record.routes[i].first));
        return out;
    }

    if (done())
        panic("stepReplay() on a finished episode");
    const dfg::NodeId node = currentNode();
    if (!state_->placementLegal(node, pe))
        panic(cat("stepReplay(): illegal action PE ", pe, " for node ",
                  node));

    state_->commitPlacement(node, pe);
    for (const auto &[edge_index, route] : record.routes)
        state_->commitRoute(edge_index, route);

    history_.push_back(node);
    rewardHistory_.push_back(record.outcome.reward);
    failHistory_.push_back(!record.outcome.routedOk);
    totalReward_ += record.outcome.reward;
    ++stepIndex_;
    ++stateEpoch_;
    // No failureStats_ recording here: a replay re-applies a step whose
    // failure was attributed when first recorded; traversal-frequency
    // accounting is the searcher's via noteRouteFailure().
    failed_ = failed_ || !record.outcome.routedOk;
    StepOutcome out = record.outcome;
    out.done = done();
    return out;
}

void
MapEnv::noteRouteFailure(std::int32_t stepIndex, cgra::PeId pe)
{
    const dfg::NodeId node =
        schedule().order[static_cast<std::size_t>(stepIndex)];
    failureStats_.recordRouteFailure(
        node, pe,
        schedule().moduloTime[static_cast<std::size_t>(node)]);
}

void
MapEnv::noteDeadEnd()
{
    if (done())
        panic("noteDeadEnd() on a finished episode");
    const dfg::NodeId node = currentNode();
    failureStats_.recordDeadEnd(node);
    // Charge the sites blocking it: every occupied function slot in the
    // node's modulo slice is a competitor for the PE it needed.
    const std::int32_t slot =
        schedule().moduloTime[static_cast<std::size_t>(node)];
    for (cgra::PeId pe = 0; pe < arch_->peCount(); ++pe) {
        if (state_->nodeAt(pe, slot) >= 0)
            failureStats_.recordBlockedSite(pe, slot);
    }
}

dfg::NodeId
MapEnv::undo()
{
    if (history_.empty())
        panic("undo() with no placements");
    const dfg::NodeId node = history_.back();
    history_.pop_back();
    router_->unrouteIncidentEdges(node);
    state_->uncommitPlacement(node);
    rewardHistory_.pop_back();
    // Recompute instead of subtracting so repeated undo/redo cycles
    // cannot accumulate floating-point drift.
    totalReward_ = 0.0;
    for (const double r : rewardHistory_)
        totalReward_ += r;
    failHistory_.pop_back();
    --stepIndex_;
    ++stateEpoch_;
    // Recompute the failure latch from the remaining history.
    failed_ = false;
    for (const bool f : failHistory_)
        failed_ = failed_ || f;
    return node;
}

} // namespace mapzero::mapper
