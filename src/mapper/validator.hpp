/**
 * @file
 * Independent validation of a completed mapping.
 *
 * The validator re-derives every constraint from scratch (it shares no
 * bookkeeping with the router), so tests can use it as ground truth that
 * the search stack produced a physically realizable configuration:
 * placement exclusivity, PE capabilities, memory-bus capacity, schedule
 * consistency, and cycle-accurate route continuity with resource
 * exclusiveness.
 */

#ifndef MAPZERO_MAPPER_VALIDATOR_HPP
#define MAPZERO_MAPPER_VALIDATOR_HPP

#include <string>
#include <vector>

#include "mapper/mapping.hpp"

namespace mapzero::mapper {

/** Validation report. */
struct ValidationResult {
    bool valid = true;
    std::vector<std::string> errors;

    void
    fail(std::string message)
    {
        valid = false;
        errors.push_back(std::move(message));
    }
};

/** Validate a (complete or partial) mapping; see file comment. */
ValidationResult validateMapping(const MappingState &state);

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_VALIDATOR_HPP
