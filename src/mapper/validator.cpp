#include "mapper/validator.hpp"

#include <map>
#include <queue>
#include <set>

#include "common/log.hpp"

namespace mapzero::mapper {

namespace {

/** Check the cycle-accurate continuity of one route. */
void
validateRoute(const MappingState &state, std::int32_t edge_index,
              ValidationResult &result)
{
    const dfg::Dfg &dfg = state.dfg();
    const cgra::Mrrg &mrrg = state.mrrg();
    const dfg::DfgEdge &edge =
        dfg.edges()[static_cast<std::size_t>(edge_index)];
    const Route &route = state.edgeRoute(edge_index);
    const Placement &src_p = state.placement(edge.src);
    const Placement &dst_p = state.placement(edge.dst);

    // Constant operands are configuration-supplied (consumer-side
    // constant units): the route must be empty and claims nothing.
    if (dfg.node(edge.src).opcode == dfg::Opcode::Const) {
        if (!route.regHolds.empty() || !route.wires.empty())
            result.fail(cat("edge ", edge_index,
                            ": constant edge claims resources"));
        return;
    }

    const std::int32_t t_produce = src_p.time;
    const std::int32_t t_consume = dst_p.time + mrrg.ii() * edge.distance;

    // The implied head of every route is the producer's FU output
    // register at production time; recorded holds are routing registers.
    std::vector<RegHold> chain;
    chain.push_back(RegHold{src_p.pe, t_produce});
    chain.insert(chain.end(), route.regHolds.begin(),
                 route.regHolds.end());
    if (chain.back().time != t_consume - 1) {
        result.fail(cat("edge ", edge_index,
                        ": route ends at t=", chain.back().time,
                        ", consumer reads at t=", t_consume));
    }

    // Wire uses grouped by cycle for path checks.
    std::multimap<std::int32_t, cgra::LinkId> wires_by_time;
    for (const WireUse &w : route.wires)
        wires_by_time.emplace(w.time, w.link);

    /** Whether the route's wires at @p cycle include a path from->to. */
    auto wire_path_exists = [&](cgra::PeId from, cgra::PeId to,
                                std::int32_t cycle) {
        if (from == to)
            return true;
        std::queue<cgra::PeId> q;
        std::set<cgra::PeId> seen{from};
        q.push(from);
        while (!q.empty()) {
            const cgra::PeId u = q.front();
            q.pop();
            if (u == to)
                return true;
            auto [lo, hi] = wires_by_time.equal_range(cycle);
            for (auto it = lo; it != hi; ++it) {
                const auto &[s, d] = mrrg.link(it->second);
                if (s == u && !seen.count(d)) {
                    seen.insert(d);
                    q.push(d);
                }
            }
        }
        return false;
    };

    const bool multi_hop = mrrg.arch().isMultiHop();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        const RegHold &a = chain[i];
        const RegHold &b = chain[i + 1];
        if (b.time != a.time + 1) {
            result.fail(cat("edge ", edge_index,
                            ": non-consecutive hold times ", a.time,
                            " -> ", b.time));
            continue;
        }
        if (a.pe == b.pe)
            continue;
        if (multi_hop) {
            if (!wire_path_exists(a.pe, b.pe, b.time))
                result.fail(cat("edge ", edge_index,
                                ": no wire path PE", a.pe, " -> PE", b.pe,
                                " in cycle ", b.time));
        } else {
            if (mrrg.linkBetween(a.pe, b.pe) < 0)
                result.fail(cat("edge ", edge_index, ": PEs ", a.pe,
                                " and ", b.pe, " not linked"));
        }
    }

    const cgra::PeId last_pe = chain.back().pe;
    if (last_pe != dst_p.pe) {
        if (multi_hop) {
            if (!wire_path_exists(last_pe, dst_p.pe, t_consume))
                result.fail(cat("edge ", edge_index,
                                ": no delivery path to consumer"));
        } else {
            if (mrrg.linkBetween(last_pe, dst_p.pe) < 0)
                result.fail(cat("edge ", edge_index,
                                ": last hold PE", last_pe,
                                " not linked to consumer PE", dst_p.pe));
        }
    }
}

} // namespace

ValidationResult
validateMapping(const MappingState &state)
{
    ValidationResult result;
    const dfg::Dfg &dfg = state.dfg();
    const cgra::Mrrg &mrrg = state.mrrg();
    const cgra::Architecture &arch = mrrg.arch();
    const dfg::Schedule &schedule = state.schedule();

    // --- Placements ---------------------------------------------------
    std::map<std::pair<cgra::PeId, std::int32_t>, dfg::NodeId> func_use;
    std::map<std::pair<std::int32_t, std::int32_t>, dfg::NodeId> bus_use;
    for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
        if (!state.placed(v))
            continue;
        const Placement &p = state.placement(v);
        if (p.pe < 0 || p.pe >= arch.peCount()) {
            result.fail(cat("node ", v, ": PE out of range"));
            continue;
        }
        if (p.time != schedule.time[static_cast<std::size_t>(v)])
            result.fail(cat("node ", v,
                            ": placement time disagrees with schedule"));
        const auto op = dfg.node(v).opcode;
        if (!arch.pe(p.pe).supports(op))
            result.fail(cat("node ", v, " (", dfg::opcodeName(op),
                            "): PE", p.pe, " lacks the capability"));

        const std::int32_t slot = mrrg.slotOf(p.time);
        const auto key = std::make_pair(p.pe, slot);
        if (const auto it = func_use.find(key); it != func_use.end())
            result.fail(cat("nodes ", it->second, " and ", v,
                            " share PE", p.pe, " slot ", slot));
        else
            func_use.emplace(key, v);

        if (arch.rowSharedMemoryBus() &&
            dfg::opClass(op) == dfg::OpClass::Memory) {
            const auto bus_key =
                std::make_pair(arch.rowOf(p.pe), slot);
            if (const auto it = bus_use.find(bus_key);
                it != bus_use.end()) {
                result.fail(cat("memory ops ", it->second, " and ", v,
                                " share the row-", bus_key.first,
                                " bus at slot ", slot));
            } else {
                bus_use.emplace(bus_key, v);
            }
        }
    }

    // --- Routes -------------------------------------------------------
    // Resource exclusiveness across everything committed: a register or
    // wire modulo slot may carry exactly one (producer, absolute-time)
    // value.
    std::map<std::int32_t, std::pair<dfg::NodeId, std::int32_t>> reg_use;
    std::map<std::int32_t, std::pair<dfg::NodeId, std::int32_t>> wire_use;
    // Producers' results live in their PE's dedicated FU output
    // register (implied by function-slot exclusivity), so only routing
    // registers are accounted here.

    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        if (!state.edgeRouted(ei))
            continue;
        const dfg::DfgEdge &edge =
            dfg.edges()[static_cast<std::size_t>(ei)];
        if (!state.placed(edge.src) || !state.placed(edge.dst)) {
            result.fail(cat("edge ", ei,
                            " routed with unplaced endpoint"));
            continue;
        }
        validateRoute(state, ei, result);

        const Route &route = state.edgeRoute(ei);
        for (const RegHold &h : route.regHolds) {
            const std::int32_t idx =
                mrrg.regIndex(h.pe, mrrg.slotOf(h.time));
            const auto want = std::make_pair(edge.src, h.time);
            const auto [it, inserted] = reg_use.emplace(idx, want);
            if (!inserted && it->second != want)
                result.fail(cat("edge ", ei, ": register PE", h.pe,
                                " slot ", mrrg.slotOf(h.time),
                                " carries conflicting values"));
        }
        for (const WireUse &w : route.wires) {
            const std::int32_t idx =
                mrrg.wireIndex(w.link, mrrg.slotOf(w.time));
            const auto want = std::make_pair(edge.src, w.time);
            const auto [it, inserted] = wire_use.emplace(idx, want);
            if (!inserted && it->second != want)
                result.fail(cat("edge ", ei, ": wire ", w.link,
                                " slot ", mrrg.slotOf(w.time),
                                " carries conflicting values"));
        }
    }

    return result;
}

} // namespace mapzero::mapper
