/**
 * @file
 * Edge routing over the modulo resource graph.
 *
 * Two interconnect families (paper §3.3):
 *
 *  - *Single-hop* fabrics (mesh / 1-hop / diagonal / toroidal): a value
 *    advances at most one link per cycle, latching into the receiving
 *    PE's output register. Placement and routing are coupled - a badly
 *    placed node may simply have no feasible route in the scheduled time.
 *
 *  - *Multi-hop* crossbar fabrics (HyCube): clockless repeaters let a
 *    value traverse several crossbar links within one cycle, so routing
 *    reduces to shortest-path search (the paper uses Dijkstra) through
 *    per-cycle wire resources with register latching at cycle boundaries.
 *
 * The router searches states (pe, t) = "value latched in pe's output
 * register at end of cycle t", with Dijkstra over hold/move transitions,
 * honoring the (owner, time) sharing rule of RoutingState so one
 * producer's fan-out can multicast through shared resources.
 */

#ifndef MAPZERO_MAPPER_ROUTER_HPP
#define MAPZERO_MAPPER_ROUTER_HPP

#include <optional>
#include <utility>

#include "mapper/mapping.hpp"

namespace mapzero::mapper {

/**
 * Debug cross-checking of the router's incremental state (frontier
 * cache, admissible Dijkstra pruning) and of MapEnv's step replay
 * against full recomputation. Every divergence panics. Also enabled by
 * the MAPZERO_ROUTER_CROSSCHECK environment variable. Global, so tests
 * must not toggle it concurrently with live searches.
 */
void setRouterCrossCheck(bool on);
bool routerCrossCheck();

/** Outcome of routing all pending edges of a placement. */
struct RouteResult {
    /** Edges successfully routed (and committed). */
    std::int32_t routed = 0;
    /** Edges that failed (nothing committed for them). */
    std::int32_t failed = 0;
    /** Total hop cost of the committed routes. */
    std::int32_t totalHops = 0;

    bool allRouted() const { return failed == 0; }
};

/** Routes DFG edges over a MappingState. */
class Router
{
  public:
    explicit Router(MappingState &state);

    /**
     * Search a route for DFG edge @p edge_index (both endpoints must be
     * placed). Does not commit. Returns nullopt when no route exists.
     */
    std::optional<Route> findRoute(std::int32_t edge_index) const;

    /** findRoute + commit. False when no route exists. */
    bool routeEdge(std::int32_t edge_index);

    /**
     * Route every unrouted edge of @p node whose other endpoint is
     * already placed. Commits the successes; failures are reported in
     * the result (callers decide whether to backtrack). When
     * @p recorded is non-null, each committed (edge index, route) pair
     * is appended in commit order, which is what MapEnv::StepRecord
     * replays verbatim on tree re-traversal.
     */
    RouteResult routeIncidentEdges(
        dfg::NodeId node,
        std::vector<std::pair<std::int32_t, Route>> *recorded = nullptr);

    /** Remove every committed route incident to @p node. */
    void unrouteIncidentEdges(dfg::NodeId node);

    /**
     * Recreate a complete mapping from bare per-node placements by
     * replaying the construction order: commit placements in schedule
     * order and route each node's incident edges immediately - exactly
     * how the search engines built the mapping, so their deterministic
     * routes are reproduced. Routing in a different order (e.g. by edge
     * index) can fail on tight fabrics because greedy routes steal
     * resources later edges needed.
     *
     * @param state a fresh MappingState for the same (DFG, MRRG)
     * @param placements per-node placements from an AttemptResult
     * @return true when every placement and route committed
     */
    static bool replayMapping(MappingState &state,
                              const std::vector<Placement> &placements);

  private:
    /** One-cycle crossbar reachability from a fixed PE (hops + BFS
     *  parent links for path reconstruction). */
    struct WireFrontier {
        std::vector<std::int32_t> hops;
        std::vector<cgra::LinkId> via;
        /** RoutingState::wireEpoch value this was computed at. */
        std::int64_t epoch = -1;
    };

    std::optional<Route> searchSingleHop(const dfg::DfgEdge &edge,
                                         std::int32_t t_produce,
                                         std::int32_t t_consume,
                                         bool prune) const;
    std::optional<Route> searchMultiHop(const dfg::DfgEdge &edge,
                                        std::int32_t t_produce,
                                        std::int32_t t_consume) const;

    /** BFS over links whose wire slot is available to (owner, cycle). */
    void wireBfs(cgra::PeId from, std::int32_t slot, dfg::NodeId owner,
                 std::int32_t cycle, WireFrontier &out) const;

    /**
     * Memoized free-wire frontier for (from, slot), recomputed only
     * when the slot's wire occupancy changed since the cached BFS.
     * Exact for any owner holding no wires in the slot (the common
     * case); owner-aware queries fall back to a fresh BFS.
     */
    const WireFrontier &freeWireFrontier(cgra::PeId from,
                                         std::int32_t slot) const;

    MappingState *state_;
    /** slot * peCount + from -> cached free-wire frontier. */
    mutable std::vector<WireFrontier> frontiers_;
    /** Scratch for owner-aware (uncached) frontier queries. */
    mutable WireFrontier scratch_;
};

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_ROUTER_HPP
