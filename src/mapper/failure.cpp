#include "mapper/failure.hpp"

#include <algorithm>

namespace mapzero::mapper {

void
FailureStats::init(std::int32_t node_count, std::int32_t pe_count,
                   std::int32_t ii_slots)
{
    ii = ii_slots;
    routeFailures.assign(static_cast<std::size_t>(node_count), 0);
    deadEnds.assign(static_cast<std::size_t>(node_count), 0);
    siteCounts.assign(
        static_cast<std::size_t>(pe_count) *
            static_cast<std::size_t>(std::max(ii_slots, 1)),
        0);
    failureEvents = 0;
    firstFailNode = -1;
}

void
FailureStats::recordRouteFailure(std::int32_t node, std::int32_t pe,
                                 std::int32_t slot)
{
    ++routeFailures[static_cast<std::size_t>(node)];
    ++siteCounts[static_cast<std::size_t>(pe) *
                     static_cast<std::size_t>(std::max(ii, 1)) +
                 static_cast<std::size_t>(slot)];
    ++failureEvents;
    if (firstFailNode < 0)
        firstFailNode = node;
}

void
FailureStats::recordDeadEnd(std::int32_t node)
{
    ++deadEnds[static_cast<std::size_t>(node)];
    ++failureEvents;
    if (firstFailNode < 0)
        firstFailNode = node;
}

void
FailureStats::recordBlockedSite(std::int32_t pe, std::int32_t slot)
{
    ++siteCounts[static_cast<std::size_t>(pe) *
                     static_cast<std::size_t>(std::max(ii, 1)) +
                 static_cast<std::size_t>(slot)];
}

std::int64_t
FailureStats::nodeFailures(std::int32_t node) const
{
    const auto v = static_cast<std::size_t>(node);
    return routeFailures[v] + deadEnds[v];
}

std::int32_t
FailureStats::blamedNode() const
{
    std::int32_t best = -1;
    std::int64_t best_count = 0;
    for (std::size_t v = 0; v < routeFailures.size(); ++v) {
        const std::int64_t count = nodeFailures(
            static_cast<std::int32_t>(v));
        const bool wins = count > best_count ||
            (count == best_count && count > 0 &&
             static_cast<std::int32_t>(v) == firstFailNode);
        if (wins) {
            best_count = count;
            best = static_cast<std::int32_t>(v);
        }
    }
    return best;
}

std::vector<CongestionSite>
FailureStats::topSites(std::size_t n) const
{
    std::vector<CongestionSite> sites;
    const auto slots = static_cast<std::size_t>(std::max(ii, 1));
    for (std::size_t i = 0; i < siteCounts.size(); ++i) {
        if (siteCounts[i] <= 0)
            continue;
        sites.push_back(CongestionSite{
            static_cast<std::int32_t>(i / slots),
            static_cast<std::int32_t>(i % slots), siteCounts[i]});
    }
    std::stable_sort(sites.begin(), sites.end(),
                     [](const CongestionSite &a, const CongestionSite &b) {
                         return a.count > b.count;
                     });
    if (sites.size() > n)
        sites.resize(n);
    return sites;
}

void
FailureStats::merge(const FailureStats &other)
{
    if (other.routeFailures.empty() && other.failureEvents == 0)
        return;
    if (routeFailures.size() != other.routeFailures.size() ||
        siteCounts.size() != other.siteCounts.size()) {
        // Different shapes (e.g. never initialized): adopt the other's.
        *this = other;
        return;
    }
    for (std::size_t v = 0; v < routeFailures.size(); ++v) {
        routeFailures[v] += other.routeFailures[v];
        deadEnds[v] += other.deadEnds[v];
    }
    for (std::size_t i = 0; i < siteCounts.size(); ++i)
        siteCounts[i] += other.siteCounts[i];
    failureEvents += other.failureEvents;
    if (firstFailNode < 0)
        firstFailNode = other.firstFailNode;
}

} // namespace mapzero::mapper
