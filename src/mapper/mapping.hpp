/**
 * @file
 * Mapping state: placements of DFG nodes onto (PE, time) coordinates and
 * the modulo resource occupancy (function, register, wire, memory bus)
 * shared by every mapper in the repository.
 *
 * Ownership model: each occupied resource records the DFG node whose value
 * (or operation) occupies it. Routing the fan-out of one producer may
 * re-use resources it already owns (multicast through shared registers and
 * crossbar wires), which is how real CGRA route sharing behaves.
 */

#ifndef MAPZERO_MAPPER_MAPPING_HPP
#define MAPZERO_MAPPER_MAPPING_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "cgra/mrrg.hpp"
#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::mapper {

/** Spatio-temporal coordinate of one DFG node. */
struct Placement {
    cgra::PeId pe = -1;
    std::int32_t time = -1;

    bool valid() const { return pe >= 0 && time >= 0; }
};

/** One register hold of a routed value. */
struct RegHold {
    cgra::PeId pe = -1;
    std::int32_t time = -1;
};

inline bool
operator==(const RegHold &a, const RegHold &b)
{
    return a.pe == b.pe && a.time == b.time;
}

/** One crossbar wire traversal of a routed value. */
struct WireUse {
    cgra::LinkId link = -1;
    std::int32_t time = -1;
};

inline bool
operator==(const WireUse &a, const WireUse &b)
{
    return a.link == b.link && a.time == b.time;
}

/** Committed route of one DFG edge. */
struct Route {
    /** Register holds committed by this route (producer's own slot at
     *  production time belongs to the placement, not the route). */
    std::vector<RegHold> regHolds;
    /** Crossbar wires committed by this route. */
    std::vector<WireUse> wires;
    /** Total hop cost (for reward shaping and reports). */
    std::int32_t hops = 0;
};

/** Exact equality, field for field (the replay cross-checks rely on
 *  this covering every committed resource of the route). */
inline bool
operator==(const Route &a, const Route &b)
{
    return a.hops == b.hops && a.regHolds == b.regHolds &&
           a.wires == b.wires;
}

inline bool
operator!=(const Route &a, const Route &b)
{
    return !(a == b);
}

/**
 * Modulo resource occupancy. Values of -1 mean free; otherwise the id of
 * the owning DFG node.
 */
class RoutingState
{
  public:
    explicit RoutingState(const cgra::Mrrg &mrrg);

    const cgra::Mrrg &mrrg() const { return *mrrg_; }

    /// @name Function slots (one op per PE per modulo slice)
    /// @{
    dfg::NodeId funcOwner(cgra::PeId pe, std::int32_t slot) const;
    void setFuncOwner(cgra::PeId pe, std::int32_t slot, dfg::NodeId owner);
    /// @}

    /// @name Output-register slots
    ///
    /// A register/wire slot occupied by a routed value records both the
    /// producing node and the *absolute time* the value crosses it.
    /// Multicast sharing is only physically consistent when both match:
    /// the same slot at a different absolute time would have to hold a
    /// different iteration's value.
    /// @{
    dfg::NodeId regOwner(cgra::PeId pe, std::int32_t slot) const;
    std::int32_t regOwnerTime(cgra::PeId pe, std::int32_t slot) const;
    void setRegOwner(cgra::PeId pe, std::int32_t slot, dfg::NodeId owner,
                     std::int32_t time);
    void clearRegOwner(cgra::PeId pe, std::int32_t slot);
    /** Free, or already carrying exactly this (owner, time) value. */
    bool regAvailable(cgra::PeId pe, std::int32_t slot, dfg::NodeId owner,
                      std::int32_t time) const;
    /// @}

    /// @name Crossbar wire slots
    /// @{
    dfg::NodeId wireOwner(cgra::LinkId link, std::int32_t slot) const;
    std::int32_t wireOwnerTime(cgra::LinkId link, std::int32_t slot) const;
    void setWireOwner(cgra::LinkId link, std::int32_t slot,
                      dfg::NodeId owner, std::int32_t time);
    void clearWireOwner(cgra::LinkId link, std::int32_t slot);
    bool wireAvailable(cgra::LinkId link, std::int32_t slot,
                       dfg::NodeId owner, std::int32_t time) const;
    /// @}

    /// @name ADRES row-shared memory bus
    /// @{
    dfg::NodeId busOwner(std::int32_t row, std::int32_t slot) const;
    void setBusOwner(std::int32_t row, std::int32_t slot,
                     dfg::NodeId owner);
    /// @}

    /// @name Incremental-routing bookkeeping
    ///
    /// The router memoizes free-wire reachability frontiers per modulo
    /// slot. wireEpoch(slot) advances whenever the slot's wire occupancy
    /// changes, which is the frontier cache's invalidation signal.
    /// ownerWireCount(owner, slot) counts wires @p owner holds in the
    /// slot: when it is zero, owner-aware wire availability degenerates
    /// to plain "is the wire free", so the shared free-wire frontier is
    /// exact for that owner's query.
    /// @{
    std::uint32_t wireEpoch(std::int32_t slot) const
    {
        return wireEpochs_[static_cast<std::size_t>(slot)];
    }
    std::int32_t ownerWireCount(dfg::NodeId owner,
                                std::int32_t slot) const;
    /// @}

  private:
    void adjustOwnerWires(dfg::NodeId owner, std::int32_t slot,
                          std::int32_t delta);

    const cgra::Mrrg *mrrg_;
    std::vector<dfg::NodeId> func_;
    std::vector<dfg::NodeId> reg_;
    std::vector<std::int32_t> regTime_;
    std::vector<dfg::NodeId> wire_;
    std::vector<std::int32_t> wireTime_;
    std::vector<dfg::NodeId> bus_;
    /** Per-slot change counter of the wire occupancy. */
    std::vector<std::uint32_t> wireEpochs_;
    /** owner * ii + slot -> wires held; grown lazily per owner. */
    std::vector<std::int32_t> ownerWires_;
};

/**
 * Full mapping under construction: placements, per-edge routes, and the
 * resource state, with exact undo for backtracking search.
 */
class MappingState
{
  public:
    /**
     * @param dfg target data flow graph (must outlive this)
     * @param mrrg modulo resource indexing (must outlive this)
     * @param schedule modulo schedule for mrrg.ii()
     */
    MappingState(const dfg::Dfg &dfg, const cgra::Mrrg &mrrg,
                 dfg::Schedule schedule);

    const dfg::Dfg &dfg() const { return *dfg_; }
    const cgra::Mrrg &mrrg() const { return *mrrg_; }
    const dfg::Schedule &schedule() const { return schedule_; }
    const RoutingState &routing() const { return routing_; }
    RoutingState &routing() { return routing_; }

    const Placement &placement(dfg::NodeId node) const;
    bool placed(dfg::NodeId node) const;
    std::int32_t placedCount() const { return placedCount_; }

    /** DFG node executing on (pe, slot), or -1. */
    dfg::NodeId nodeAt(cgra::PeId pe, std::int32_t slot) const;

    /**
     * Whether @p node may be *placed* on @p pe (function slot free, PE
     * capability, memory-bus capacity). Routability is checked separately
     * by the router.
     */
    bool placementLegal(dfg::NodeId node, cgra::PeId pe) const;

    /**
     * Commit a placement (no routing). Occupies the function slot, the
     * producer's own register slot at its production time, and the memory
     * bus when applicable. Placement must be legal.
     */
    void commitPlacement(dfg::NodeId node, cgra::PeId pe);

    /** Undo commitPlacement (the node's edge routes must be gone). */
    void uncommitPlacement(dfg::NodeId node);

    /** Record the committed route of DFG edge @p edge_index. */
    void commitRoute(std::int32_t edge_index, Route route);

    /** Remove the route of @p edge_index, freeing its resources. */
    void uncommitRoute(std::int32_t edge_index);

    bool edgeRouted(std::int32_t edge_index) const;
    const Route &edgeRoute(std::int32_t edge_index) const;

    /** Indices of routed edges incident to @p node. */
    std::vector<std::int32_t> routedEdgesOf(dfg::NodeId node) const;

    /** True when every node is placed and every edge routed. */
    bool complete() const;

  private:
    const dfg::Dfg *dfg_;
    const cgra::Mrrg *mrrg_;
    dfg::Schedule schedule_;
    RoutingState routing_;
    std::vector<Placement> placements_;
    std::vector<std::optional<Route>> routes_;
    std::int32_t placedCount_ = 0;
    std::int32_t routedCount_ = 0;
};

} // namespace mapzero::mapper

#endif // MAPZERO_MAPPER_MAPPING_HPP
