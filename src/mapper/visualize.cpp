#include "mapper/visualize.hpp"

#include <sstream>

#include "common/log.hpp"

namespace mapzero::mapper {

std::string
renderMappingGrid(const MappingState &state)
{
    const cgra::Architecture &arch = state.mrrg().arch();
    const dfg::Dfg &dfg = state.dfg();
    const std::int32_t ii = state.mrrg().ii();

    std::ostringstream os;
    for (std::int32_t slot = 0; slot < ii; ++slot) {
        os << "slot " << slot << "/" << ii << ":\n";
        for (std::int32_t r = 0; r < arch.rows(); ++r) {
            os << "  ";
            for (std::int32_t c = 0; c < arch.cols(); ++c) {
                const dfg::NodeId v =
                    state.nodeAt(arch.peAt(r, c), slot);
                std::ostringstream cell;
                if (v >= 0) {
                    cell << v << ":" << dfg::opcodeName(
                        dfg.node(v).opcode);
                } else {
                    cell << ".";
                }
                std::string text = cell.str();
                if (text.size() > 10)
                    text = text.substr(0, 10);
                os << text;
                for (std::size_t pad = text.size(); pad < 11; ++pad)
                    os << ' ';
            }
            os << "\n";
        }
    }
    return os.str();
}

std::string
mappingToDot(const MappingState &state)
{
    const dfg::Dfg &dfg = state.dfg();
    const cgra::Architecture &arch = state.mrrg().arch();

    std::ostringstream os;
    os << "digraph \"mapping_" << dfg.name() << "\" {\n";
    os << "  node [shape=box];\n";
    for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
        os << "  n" << v << " [label=\"" << v << ":"
           << dfg::opcodeName(dfg.node(v).opcode);
        if (state.placed(v)) {
            const Placement &p = state.placement(v);
            os << "\\nPE" << p.pe << " (r" << arch.rowOf(p.pe) << ",c"
               << arch.colOf(p.pe) << ") t=" << p.time;
        } else {
            os << "\\nunplaced";
        }
        os << "\"];\n";
    }
    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        const dfg::DfgEdge &e =
            dfg.edges()[static_cast<std::size_t>(ei)];
        os << "  n" << e.src << " -> n" << e.dst;
        std::vector<std::string> attrs;
        if (e.distance != 0)
            attrs.push_back(cat("style=dashed label=\"d=", e.distance,
                                "\""));
        else if (state.edgeRouted(ei))
            attrs.push_back(cat("label=\"", state.edgeRoute(ei).hops,
                                " hop(s)\""));
        if (!attrs.empty()) {
            os << " [";
            for (const auto &a : attrs)
                os << a;
            os << "]";
        }
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string
renderPlacementTable(const MappingState &state)
{
    const dfg::Dfg &dfg = state.dfg();
    const cgra::Architecture &arch = state.mrrg().arch();

    std::ostringstream os;
    for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
        os << "  " << v << "\t"
           << dfg::opcodeName(dfg.node(v).opcode) << "\t";
        if (state.placed(v)) {
            const Placement &p = state.placement(v);
            os << "PE" << p.pe << " (r" << arch.rowOf(p.pe) << ",c"
               << arch.colOf(p.pe) << ")\tt=" << p.time;
        } else {
            os << "unplaced";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace mapzero::mapper
