#include "mapper/mapping.hpp"

#include "common/log.hpp"

namespace mapzero::mapper {

RoutingState::RoutingState(const cgra::Mrrg &mrrg)
    : mrrg_(&mrrg),
      func_(static_cast<std::size_t>(mrrg.funcResourceCount()), -1),
      reg_(static_cast<std::size_t>(mrrg.regResourceCount()), -1),
      regTime_(static_cast<std::size_t>(mrrg.regResourceCount()), -1),
      wire_(static_cast<std::size_t>(mrrg.wireResourceCount()), -1),
      wireTime_(static_cast<std::size_t>(mrrg.wireResourceCount()), -1),
      bus_(static_cast<std::size_t>(mrrg.arch().rows() * mrrg.ii()), -1),
      wireEpochs_(static_cast<std::size_t>(mrrg.ii()), 0)
{}

dfg::NodeId
RoutingState::funcOwner(cgra::PeId pe, std::int32_t slot) const
{
    return func_[static_cast<std::size_t>(mrrg_->funcIndex(pe, slot))];
}

void
RoutingState::setFuncOwner(cgra::PeId pe, std::int32_t slot,
                           dfg::NodeId owner)
{
    func_[static_cast<std::size_t>(mrrg_->funcIndex(pe, slot))] = owner;
}

dfg::NodeId
RoutingState::regOwner(cgra::PeId pe, std::int32_t slot) const
{
    return reg_[static_cast<std::size_t>(mrrg_->regIndex(pe, slot))];
}

std::int32_t
RoutingState::regOwnerTime(cgra::PeId pe, std::int32_t slot) const
{
    return regTime_[static_cast<std::size_t>(mrrg_->regIndex(pe, slot))];
}

void
RoutingState::setRegOwner(cgra::PeId pe, std::int32_t slot,
                          dfg::NodeId owner, std::int32_t time)
{
    const auto i = static_cast<std::size_t>(mrrg_->regIndex(pe, slot));
    reg_[i] = owner;
    regTime_[i] = time;
}

void
RoutingState::clearRegOwner(cgra::PeId pe, std::int32_t slot)
{
    const auto i = static_cast<std::size_t>(mrrg_->regIndex(pe, slot));
    reg_[i] = -1;
    regTime_[i] = -1;
}

bool
RoutingState::regAvailable(cgra::PeId pe, std::int32_t slot,
                           dfg::NodeId owner, std::int32_t time) const
{
    const auto i = static_cast<std::size_t>(mrrg_->regIndex(pe, slot));
    return reg_[i] == -1 || (reg_[i] == owner && regTime_[i] == time);
}

dfg::NodeId
RoutingState::wireOwner(cgra::LinkId link, std::int32_t slot) const
{
    return wire_[static_cast<std::size_t>(mrrg_->wireIndex(link, slot))];
}

std::int32_t
RoutingState::wireOwnerTime(cgra::LinkId link, std::int32_t slot) const
{
    return wireTime_[
        static_cast<std::size_t>(mrrg_->wireIndex(link, slot))];
}

void
RoutingState::setWireOwner(cgra::LinkId link, std::int32_t slot,
                           dfg::NodeId owner, std::int32_t time)
{
    const auto i = static_cast<std::size_t>(mrrg_->wireIndex(link, slot));
    if (wire_[i] == owner && wireTime_[i] == time)
        return; // multicast re-commit of an already-held wire
    if (wire_[i] != -1)
        adjustOwnerWires(wire_[i], slot, -1);
    if (owner != -1)
        adjustOwnerWires(owner, slot, +1);
    wire_[i] = owner;
    wireTime_[i] = time;
    ++wireEpochs_[static_cast<std::size_t>(slot)];
}

void
RoutingState::clearWireOwner(cgra::LinkId link, std::int32_t slot)
{
    const auto i = static_cast<std::size_t>(mrrg_->wireIndex(link, slot));
    if (wire_[i] == -1)
        return;
    adjustOwnerWires(wire_[i], slot, -1);
    wire_[i] = -1;
    wireTime_[i] = -1;
    ++wireEpochs_[static_cast<std::size_t>(slot)];
}

std::int32_t
RoutingState::ownerWireCount(dfg::NodeId owner, std::int32_t slot) const
{
    const auto i = static_cast<std::size_t>(owner) *
                       static_cast<std::size_t>(mrrg_->ii()) +
                   static_cast<std::size_t>(slot);
    return i < ownerWires_.size() ? ownerWires_[i] : 0;
}

void
RoutingState::adjustOwnerWires(dfg::NodeId owner, std::int32_t slot,
                               std::int32_t delta)
{
    const auto i = static_cast<std::size_t>(owner) *
                       static_cast<std::size_t>(mrrg_->ii()) +
                   static_cast<std::size_t>(slot);
    if (i >= ownerWires_.size())
        ownerWires_.resize(i + 1, 0);
    ownerWires_[i] += delta;
}

bool
RoutingState::wireAvailable(cgra::LinkId link, std::int32_t slot,
                            dfg::NodeId owner, std::int32_t time) const
{
    const auto i = static_cast<std::size_t>(mrrg_->wireIndex(link, slot));
    return wire_[i] == -1 || (wire_[i] == owner && wireTime_[i] == time);
}

dfg::NodeId
RoutingState::busOwner(std::int32_t row, std::int32_t slot) const
{
    return bus_[static_cast<std::size_t>(row * mrrg_->ii() + slot)];
}

void
RoutingState::setBusOwner(std::int32_t row, std::int32_t slot,
                          dfg::NodeId owner)
{
    bus_[static_cast<std::size_t>(row * mrrg_->ii() + slot)] = owner;
}

MappingState::MappingState(const dfg::Dfg &dfg, const cgra::Mrrg &mrrg,
                           dfg::Schedule schedule)
    : dfg_(&dfg), mrrg_(&mrrg), schedule_(std::move(schedule)),
      routing_(mrrg),
      placements_(static_cast<std::size_t>(dfg.nodeCount())),
      routes_(static_cast<std::size_t>(dfg.edgeCount()))
{
    if (schedule_.ii != mrrg.ii())
        panic("MappingState: schedule II differs from MRRG II");
    if (static_cast<std::int32_t>(schedule_.time.size()) !=
        dfg.nodeCount())
        panic("MappingState: schedule does not cover the DFG");
}

const Placement &
MappingState::placement(dfg::NodeId node) const
{
    return placements_[static_cast<std::size_t>(node)];
}

bool
MappingState::placed(dfg::NodeId node) const
{
    return placement(node).valid();
}

dfg::NodeId
MappingState::nodeAt(cgra::PeId pe, std::int32_t slot) const
{
    return routing_.funcOwner(pe, slot);
}

bool
MappingState::placementLegal(dfg::NodeId node, cgra::PeId pe) const
{
    if (placed(node))
        return false;
    const auto op = dfg_->node(node).opcode;
    const auto &arch = mrrg_->arch();
    if (!arch.pe(pe).supports(op))
        return false;
    const std::int32_t time =
        schedule_.time[static_cast<std::size_t>(node)];
    const std::int32_t slot = mrrg_->slotOf(time);
    (void)time;
    if (routing_.funcOwner(pe, slot) != -1)
        return false;
    if (arch.rowSharedMemoryBus() &&
        dfg::opClass(op) == dfg::OpClass::Memory &&
        routing_.busOwner(arch.rowOf(pe), slot) != -1) {
        return false;
    }
    return true;
}

void
MappingState::commitPlacement(dfg::NodeId node, cgra::PeId pe)
{
    if (!placementLegal(node, pe))
        panic(cat("illegal placement of node ", node, " on PE ", pe));
    const std::int32_t time =
        schedule_.time[static_cast<std::size_t>(node)];
    const std::int32_t slot = mrrg_->slotOf(time);
    placements_[static_cast<std::size_t>(node)] = Placement{pe, time};
    routing_.setFuncOwner(pe, slot, node);
    const auto &arch = mrrg_->arch();
    if (arch.rowSharedMemoryBus() &&
        dfg::opClass(dfg_->node(node).opcode) == dfg::OpClass::Memory) {
        routing_.setBusOwner(arch.rowOf(pe), slot, node);
    }
    ++placedCount_;
}

void
MappingState::uncommitPlacement(dfg::NodeId node)
{
    const Placement &p = placement(node);
    if (!p.valid())
        panic(cat("uncommitPlacement of unplaced node ", node));
    const std::int32_t slot = mrrg_->slotOf(p.time);
    routing_.setFuncOwner(p.pe, slot, -1);
    const auto &arch = mrrg_->arch();
    if (arch.rowSharedMemoryBus() &&
        dfg::opClass(dfg_->node(node).opcode) == dfg::OpClass::Memory) {
        routing_.setBusOwner(arch.rowOf(p.pe), slot, -1);
    }
    placements_[static_cast<std::size_t>(node)] = Placement{};
    --placedCount_;
}

void
MappingState::commitRoute(std::int32_t edge_index, Route route)
{
    auto &slot = routes_[static_cast<std::size_t>(edge_index)];
    if (slot.has_value())
        panic(cat("edge ", edge_index, " routed twice"));
    const dfg::DfgEdge &edge =
        dfg_->edges()[static_cast<std::size_t>(edge_index)];
    for (const RegHold &h : route.regHolds)
        routing_.setRegOwner(h.pe, mrrg_->slotOf(h.time), edge.src,
                             h.time);
    for (const WireUse &w : route.wires)
        routing_.setWireOwner(w.link, mrrg_->slotOf(w.time), edge.src,
                              w.time);
    slot = std::move(route);
    ++routedCount_;
}

void
MappingState::uncommitRoute(std::int32_t edge_index)
{
    auto &slot = routes_[static_cast<std::size_t>(edge_index)];
    if (!slot.has_value())
        panic(cat("uncommitRoute of unrouted edge ", edge_index));
    const dfg::DfgEdge &edge =
        dfg_->edges()[static_cast<std::size_t>(edge_index)];

    // A register/wire slot may be shared by several routes of the same
    // producer; only free it when no *other* remaining route of that
    // producer still uses it.
    auto still_used_reg = [&](const RegHold &h) {
        for (std::int32_t ei : dfg_->outEdges(edge.src)) {
            if (ei == edge_index)
                continue;
            const auto &other = routes_[static_cast<std::size_t>(ei)];
            if (!other)
                continue;
            for (const RegHold &oh : other->regHolds)
                if (oh.pe == h.pe && oh.time == h.time)
                    return true;
        }
        return false;
    };
    auto still_used_wire = [&](const WireUse &w) {
        for (std::int32_t ei : dfg_->outEdges(edge.src)) {
            if (ei == edge_index)
                continue;
            const auto &other = routes_[static_cast<std::size_t>(ei)];
            if (!other)
                continue;
            for (const WireUse &ow : other->wires)
                if (ow.link == w.link && ow.time == w.time)
                    return true;
        }
        return false;
    };

    for (const RegHold &h : slot->regHolds) {
        if (!still_used_reg(h))
            routing_.clearRegOwner(h.pe, mrrg_->slotOf(h.time));
    }
    for (const WireUse &w : slot->wires) {
        if (!still_used_wire(w))
            routing_.clearWireOwner(w.link, mrrg_->slotOf(w.time));
    }
    slot.reset();
    --routedCount_;
}

bool
MappingState::edgeRouted(std::int32_t edge_index) const
{
    return routes_[static_cast<std::size_t>(edge_index)].has_value();
}

const Route &
MappingState::edgeRoute(std::int32_t edge_index) const
{
    const auto &slot = routes_[static_cast<std::size_t>(edge_index)];
    if (!slot)
        panic(cat("edgeRoute of unrouted edge ", edge_index));
    return *slot;
}

std::vector<std::int32_t>
MappingState::routedEdgesOf(dfg::NodeId node) const
{
    std::vector<std::int32_t> out;
    for (std::int32_t ei : dfg_->inEdges(node))
        if (edgeRouted(ei))
            out.push_back(ei);
    for (std::int32_t ei : dfg_->outEdges(node)) {
        const dfg::DfgEdge &e =
            dfg_->edges()[static_cast<std::size_t>(ei)];
        if (e.src == e.dst)
            continue; // already collected via inEdges
        if (edgeRouted(ei))
            out.push_back(ei);
    }
    return out;
}

bool
MappingState::complete() const
{
    return placedCount_ == dfg_->nodeCount() &&
           routedCount_ == dfg_->edgeCount();
}

} // namespace mapzero::mapper
