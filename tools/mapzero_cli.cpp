/**
 * @file
 * mapzero_cli - command-line front end of the MapZero compiler.
 *
 *   mapzero_cli map      --kernel mac --arch hrea [--method mapzero]
 *                        [--time 10] [--restarts R] [--no-eval-cache]
 *                        [--viz] [--dot] [--bitstream F]
 *   mapzero_cli train    --arch hrea [--episodes N] [--seed S]
 *                        [--checkpoint-out F] [--checkpoint-every K]
 *                        [--resume [F]] [--time S]
 *   mapzero_cli analyze  --kernel arf
 *   mapzero_cli simulate --kernel mac --arch hrea [--iters 8]
 *   mapzero_cli report   --journal FILE [--hotspots N]
 *   mapzero_cli report   --compare BASELINE.json CANDIDATE.json
 *                        [--threshold 0.05]
 *   mapzero_cli report   --metrics RUNREPORT.json
 *   mapzero_cli report   --trace TIMELINE.json [--chrome OUT.json]
 *   mapzero_cli list
 *   mapzero_cli serve    [--port 0] [--bind 127.0.0.1] [--workers N]
 *                        [--queue-depth Q] [--slowlog-ms MS]
 *                        [--cache-dir DIR]
 *   mapzero_cli submit   --port P --kernel mac --arch hrea
 *                        [--method sa] [--time 10] [--wait]
 *   mapzero_cli status|fetch|cancel --port P --id JOB
 *   mapzero_cli trace    --port P --id JOB [--json] [--chrome FILE]
 *   mapzero_cli drain    --port P
 *
 * Kernels come from the built-in Table-2 set, or from a DOT file via
 * --kernel-dot <path> (dialect of dfg/dot.hpp). Fabrics: hrea,
 * morphosys, adres, hycube, baseline8, baseline16, hetero.
 *
 * Observability options (any command):
 *   --trace-out FILE    Chrome trace-event JSON of the run (open in
 *                       chrome://tracing or https://ui.perfetto.dev)
 *   --metrics-out FILE  JSON run report of all registry metrics
 *   --journal-out FILE  structured flight-recorder journal (JSONL; read
 *                       back with `report --journal`; also settable via
 *                       the MAPZERO_JOURNAL environment variable)
 *   --log-level LEVEL   debug|info|warn|error|off (also settable via
 *                       the MAPZERO_LOG_LEVEL environment variable)
 *   --jobs N            worker threads for parallel compilation and
 *                       self-play (0 = all hardware threads; default 1;
 *                       also settable via MAPZERO_NUM_THREADS)
 *   --stats-port PORT   serve live telemetry over HTTP while the
 *                       command runs: GET /metrics (Prometheus text),
 *                       /snapshot.json, /journal, /healthz. PORT 0
 *                       picks an ephemeral port (printed on stdout).
 *                       Also settable via MAPZERO_STATS_PORT.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/exact_mapper.hpp"
#include "common/journal.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "core/agent_cache.hpp"
#include "core/bitstream.hpp"
#include "core/compiler.hpp"
#include "core/diagnostics.hpp"
#include "core/spatial.hpp"
#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/visualize.hpp"
#include "sim/fabric_sim.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/telemetry_server.hpp"

namespace {

using namespace mapzero;

/** Parsed "--key value" / "--flag" arguments plus bare positionals. */
struct Args {
    std::string command;
    std::map<std::string, std::string> options;
    std::vector<std::string> positionals;

    bool
    flag(const std::string &name) const
    {
        return options.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        const auto it = options.find(name);
        return it == options.end() ? fallback : it->second;
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc > 1)
        args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            // Bare operand: `report --compare A.json B.json` puts the
            // second file here.
            args.positionals.push_back(std::move(token));
            continue;
        }
        token = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
            args.options[token] = argv[++i];
        else
            args.options[token] = "";
    }
    return args;
}

cgra::Architecture
fabricByName(const std::string &name)
{
    if (name == "hrea")       return cgra::Architecture::hrea();
    if (name == "morphosys")  return cgra::Architecture::morphosys();
    if (name == "adres")      return cgra::Architecture::adres();
    if (name == "hycube")     return cgra::Architecture::hycube();
    if (name == "baseline8")  return cgra::Architecture::baseline8();
    if (name == "baseline16") return cgra::Architecture::baseline16();
    if (name == "hetero")     return cgra::Architecture::heterogeneous();
    fatal("unknown fabric: " + name +
          " (hrea|morphosys|adres|hycube|baseline8|baseline16|hetero)");
}

dfg::Dfg
kernelFromArgs(const Args &args)
{
    if (args.flag("kernel-dot")) {
        std::ifstream is(args.get("kernel-dot", ""));
        if (!is)
            fatal("cannot open " + args.get("kernel-dot", ""));
        return dfg::readDot(is);
    }
    return dfg::buildKernel(args.get("kernel", "mac"));
}

Method
methodByName(const std::string &name)
{
    if (name == "mapzero") return Method::MapZero;
    if (name == "ilp")     return Method::Ilp;
    if (name == "sa")      return Method::Sa;
    if (name == "lisa")    return Method::Lisa;
    fatal("unknown method: " + name + " (mapzero|ilp|sa|lisa)");
}

/** Rebuild a MappingState from a CompileResult (routes re-derived). */
mapper::MappingState
rebuildMapping(const dfg::Dfg &dfg, const cgra::Mrrg &mrrg,
               const CompileResult &r)
{
    auto schedule = dfg::moduloSchedule(
        dfg, r.ii, mrrg.arch().memoryIssueCapacity());
    mapper::MappingState state(dfg, mrrg, *schedule);
    if (!mapper::Router::replayMapping(state, r.placements))
        fatal("replaying the mapping failed");
    return state;
}

int
cmdList()
{
    std::printf("%-12s %5s %5s %9s\n", "kernel", "ops", "deps",
                "unrolled");
    for (const auto &info : dfg::kernelTable())
        std::printf("%-12s %5d %5d %9s\n", info.name.c_str(),
                    info.vertices, info.edges,
                    info.unrolled ? "yes" : "no");
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const dfg::Dfg kernel = kernelFromArgs(args);
    std::printf("kernel '%s': %d ops, %d deps, %d memory ops, "
                "RecMII=%d\n\n",
                kernel.name().c_str(), kernel.nodeCount(),
                kernel.edgeCount(), kernel.memoryOpCount(),
                dfg::recMii(kernel));
    std::printf("%-16s %-8s %-8s\n", "fabric", "ResMII", "MII");
    for (const char *name : {"hrea", "morphosys", "adres", "hycube",
                             "baseline8", "baseline16", "hetero"}) {
        const cgra::Architecture arch = fabricByName(name);
        std::printf("%-16s %-8d %-8d\n", name,
                    dfg::resMii(kernel, arch.peCount(),
                                arch.memoryIssueCapacity()),
                    Compiler::minimumIi(kernel, arch));
    }
    return 0;
}

int
cmdMap(const Args &args)
{
    const dfg::Dfg kernel = kernelFromArgs(args);
    const cgra::Architecture arch =
        fabricByName(args.get("arch", "hrea"));
    const Method method = methodByName(args.get("method", "mapzero"));

    Compiler compiler;
    if (method == Method::MapZero || method == Method::MapZeroNoMcts)
        compiler.setNetwork(pretrainedNetwork(arch));

    CompileOptions options;
    options.timeLimitSeconds = std::atof(
        args.get("time", "10").c_str());
    options.jobs = static_cast<std::int32_t>(resolveJobs());
    options.restartsPerIi = static_cast<std::int32_t>(
        std::atoi(args.get("restarts", "0").c_str()));
    options.evalCache = !args.flag("no-eval-cache");
    const CompileResult r =
        compiler.compile(kernel, arch, method, options);

    if (!r.success) {
        std::printf("mapping failed (MII=%d, %.2fs)\n", r.mii,
                    r.seconds);
        return 1;
    }
    std::printf("%s: %s on %s -> II=%d (MII=%d), %.3fs, %lld search "
                "ops\n",
                methodName(method), kernel.name().c_str(),
                arch.name().c_str(), r.ii, r.mii, r.seconds,
                static_cast<long long>(r.searchOps));

    cgra::Mrrg mrrg(arch, r.ii);
    mapper::MappingState state = rebuildMapping(kernel, mrrg, r);

    if (args.flag("viz"))
        std::printf("\n%s", mapper::renderMappingGrid(state).c_str());
    if (args.flag("dot"))
        std::printf("\n%s", mapper::mappingToDot(state).c_str());
    if (args.flag("bitstream")) {
        const Bitstream bitstream = generateBitstream(state);
        const std::string path = args.get("bitstream", "");
        if (path.empty()) {
            std::printf("\n%s", bitstreamToText(bitstream).c_str());
        } else {
            std::ofstream os(path, std::ios::binary);
            writeBitstream(bitstream, os);
            std::printf("bitstream written to %s\n", path.c_str());
        }
    }
    return 0;
}

/**
 * Curriculum pre-training with crash-safe checkpoints.
 *
 * --checkpoint-out F   write a full trainer checkpoint to F (atomic)
 * --checkpoint-every K auto-save every K episodes (default 0 = only a
 *                      final save when --checkpoint-out is set)
 * --resume [F]         restore F (default: the --checkpoint-out path)
 *                      before training; a missing file starts fresh, so
 *                      the same command line works before and after a
 *                      crash
 * --episodes-per-run N stop after N episodes this invocation (chunked
 *                      training; 0 = run to completion)
 */
int
cmdTrain(const Args &args)
{
    const cgra::Architecture arch =
        fabricByName(args.get("arch", "hrea"));

    rl::TrainerConfig config;
    config.mcts.expansionsPerMove = static_cast<std::int32_t>(
        std::atoi(args.get("expansions", "16").c_str()));
    config.checkpointPath = args.get("checkpoint-out", "");
    config.checkpointEvery = static_cast<std::int32_t>(
        std::atoi(args.get("checkpoint-every", "0").c_str()));
    config.maxEpisodesPerRun = static_cast<std::int32_t>(
        std::atoi(args.get("episodes-per-run", "0").c_str()));
    config.statsJsonlPath = args.get("stats-jsonl", "");

    const auto episodes = static_cast<std::int32_t>(
        std::atoi(args.get("episodes", "64").c_str()));
    const auto min_nodes = static_cast<std::int32_t>(
        std::atoi(args.get("min-nodes", "3").c_str()));
    const auto max_nodes = static_cast<std::int32_t>(
        std::atoi(args.get("max-nodes", "14").c_str()));
    const auto seed = static_cast<std::uint64_t>(
        std::atoll(args.get("seed", "11").c_str()));
    const double seconds = std::atof(args.get("time", "0").c_str());

    rl::Trainer trainer(arch, config, seed);
    if (args.flag("resume")) {
        std::string from = args.get("resume", "");
        if (from.empty())
            from = config.checkpointPath;
        if (from.empty())
            fatal("--resume needs a checkpoint path (or set "
                  "--checkpoint-out)");
        std::ifstream probe(from, std::ios::binary);
        if (probe) {
            probe.close();
            trainer.loadCheckpoint(from);
        } else {
            inform(cat("no checkpoint at ", from,
                       "; starting training from scratch"));
        }
    }

    const std::int32_t already_done = trainer.episodesCompleted();
    const auto stats =
        trainer.pretrain(episodes, min_nodes, max_nodes,
                         Deadline(seconds));
    std::int32_t successes = 0;
    for (const auto &s : stats)
        successes += s.success ? 1 : 0;
    std::printf("trained %zu episodes this run (%d/%d total, %d "
                "successful this run)\n",
                stats.size(), trainer.episodesCompleted(), episodes,
                successes);
    if (!config.checkpointPath.empty())
        std::printf("checkpoint written to %s\n",
                    config.checkpointPath.c_str());
    if (already_done >= episodes && stats.empty())
        std::printf("training already complete; checkpoint "
                    "validated\n");
    return 0;
}

int
cmdSimulate(const Args &args)
{
    const dfg::Dfg kernel = kernelFromArgs(args);
    const cgra::Architecture arch =
        fabricByName(args.get("arch", "hrea"));
    const std::int64_t iterations =
        std::atoll(args.get("iters", "8").c_str());

    const std::int32_t mii = Compiler::minimumIi(kernel, arch);
    baselines::ExactMapper exact;
    Compiler compiler;
    const CompileResult r = compiler.compileWith(
        exact, kernel, arch,
        CompileOptions{.timeLimitSeconds = 30.0});
    if (!r.success) {
        std::printf("mapping failed (MII=%d)\n", mii);
        return 1;
    }

    cgra::Mrrg mrrg(arch, r.ii);
    mapper::MappingState state = rebuildMapping(kernel, mrrg, r);
    const auto provider = sim::defaultProvider();
    const auto run = sim::simulateFabric(state, iterations, provider);
    std::printf("II=%d, %lld cycles, %zu stores\n", r.ii,
                static_cast<long long>(run.cycles), run.stores.size());
    const std::string divergence =
        sim::compareWithReference(state, iterations, provider);
    if (!divergence.empty()) {
        std::printf("MISMATCH: %s\n", divergence.c_str());
        return 1;
    }
    std::printf("matches the reference interpreter\n");
    return 0;
}

std::string
readTextFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open " + path);
    std::ostringstream os;
    os << is.rdbuf();
    if (is.bad())
        fatal("failed reading " + path);
    return os.str();
}

/**
 * Offline diagnostics over artifacts earlier runs wrote to disk:
 *
 *   report --journal FILE [--hotspots N]     post-mortem of a journal
 *   report --compare BASE.json CAND.json     diff two --metrics-out run
 *          [--threshold 0.05]                reports; exits 3 on any
 *                                            regression >= threshold
 *   report --metrics FILE                    human-readable summary of
 *                                            one --metrics-out report
 *   report --trace FILE [--chrome OUT]       ASCII timeline of a saved
 *                                            request trace (the JSON
 *                                            from `trace --json` or
 *                                            GET /trace?job=ID)
 */
int
cmdReport(const Args &args)
{
    if (args.flag("trace")) {
        const std::string path = args.get("trace", "");
        if (path.empty())
            fatal("report --trace needs a timeline file (save one "
                  "with `trace --json` or GET /trace?job=ID)");
        const JsonValue timeline =
            JsonValue::parse(readTextFile(path));
        std::printf("%s", renderTraceTimeline(timeline).c_str());
        const std::string chrome_out = args.get("chrome", "");
        if (!chrome_out.empty()) {
            std::ofstream os(chrome_out, std::ios::binary);
            if (!os)
                fatal("cannot write " + chrome_out);
            os << timelineToChromeJson(timeline);
            std::printf("chrome trace written to %s (open in "
                        "chrome://tracing)\n",
                        chrome_out.c_str());
        }
        return 0;
    }

    if (args.flag("metrics")) {
        const std::string path = args.get("metrics", "");
        if (path.empty())
            fatal("report --metrics needs a run-report file (the JSON "
                  "written by --metrics-out)");
        const JsonValue report = JsonValue::parse(readTextFile(path));
        std::printf("%s", renderMetricsReport(report).c_str());
        return 0;
    }

    if (args.flag("compare")) {
        const std::string base_path = args.get("compare", "");
        if (base_path.empty() || args.positionals.empty())
            fatal("report --compare needs two run-report files: "
                  "report --compare BASELINE.json CANDIDATE.json");
        const JsonValue base =
            JsonValue::parse(readTextFile(base_path));
        const JsonValue cand =
            JsonValue::parse(readTextFile(args.positionals.front()));
        CompareOptions options;
        options.threshold =
            std::atof(args.get("threshold", "0.05").c_str());
        if (options.threshold <= 0.0)
            fatal("--threshold must be a positive fraction "
                  "(0.05 = 5%)");
        const CompareReport cmp = compareRunReports(base, cand,
                                                    options);
        std::printf("%s", cmp.text.c_str());
        return cmp.regressed ? 3 : 0;
    }

    std::string journal_path = args.get("journal", "");
    if (journal_path.empty() && !args.positionals.empty())
        journal_path = args.positionals.front();
    if (journal_path.empty())
        fatal("report needs --journal FILE (or --compare A B); "
              "journals come from --journal-out / MAPZERO_JOURNAL");
    DiagnosticsOptions options;
    options.hotspotCount = static_cast<std::size_t>(
        std::atoi(args.get("hotspots", "3").c_str()));
    if (options.hotspotCount == 0)
        options.hotspotCount = 3;
    const std::vector<JsonValue> records =
        JsonValue::parseLines(readTextFile(journal_path));
    std::printf("%s", renderJournalDiagnostics(records,
                                               options).c_str());
    return 0;
}

} // namespace

int
cmdSpatial(const Args &args)
{
    const dfg::Dfg kernel = kernelFromArgs(args);
    const cgra::Architecture arch =
        fabricByName(args.get("arch", "hrea"));
    baselines::ExactMapper engine;
    SpatialOptions options;
    options.timeLimitSeconds =
        std::atof(args.get("time", "10").c_str());
    const SpatialResult r = spatialMap(engine, kernel, arch, options);
    if (!r.success) {
        std::printf("one-shot mapping failed (critical path %d)\n",
                    r.criticalPath);
        return 1;
    }
    std::printf("one-shot mapping of %s on %s: makespan %d cycles "
                "(critical path %d), %.3fs\n",
                kernel.name().c_str(), arch.name().c_str(), r.makespan,
                r.criticalPath, r.seconds);
    return 0;
}

// ------------------------------------------------------------- serving

int
cmdServe(const Args &args)
{
    svc::DaemonOptions options;
    options.port =
        static_cast<int>(std::atoll(args.get("port", "0").c_str()));
    options.bindAddress = args.get("bind", "127.0.0.1");
    options.workers = static_cast<std::int32_t>(
        std::atoll(args.get("workers", "0").c_str()));
    const long long depth =
        std::atoll(args.get("queue-depth", "64").c_str());
    if (depth < 1)
        fatal("--queue-depth must be >= 1");
    options.queueCapacity = static_cast<std::size_t>(depth);
    options.slowlogThresholdSeconds =
        std::atof(args.get("slowlog-ms", "500").c_str()) / 1000.0;
    options.service.persistDir = args.get("cache-dir", "");
    if (!options.service.persistDir.empty())
        std::printf("mapzerod: persistent result cache at %s\n",
                    options.service.persistDir.c_str());

    svc::Daemon daemon;
    if (!daemon.start(options))
        return 1;
    // Machine-parseable endpoint line (the CI smoke greps this).
    std::printf("mapzerod: listening on %s:%d\n",
                options.bindAddress.c_str(), daemon.port());
    std::fflush(stdout);
    daemon.installSignalHandlers();
    const std::int64_t jobs = daemon.run();
    std::printf("mapzerod: exit after %lld terminal jobs\n",
                static_cast<long long>(jobs));
    return 0;
}

/** --port is mandatory for every client subcommand. */
int
clientPort(const Args &args)
{
    const std::string port = args.get("port", "");
    if (port.empty())
        fatal("--port is required (the mapzerod endpoint)");
    const long long parsed = std::atoll(port.c_str());
    if (parsed < 1 || parsed > 65535)
        fatal("--port must be in [1, 65535]");
    return static_cast<int>(parsed);
}

svc::Client
clientFromArgs(const Args &args)
{
    return svc::Client(clientPort(args),
                       args.get("host", "127.0.0.1"));
}

std::uint64_t
jobIdFromArgs(const Args &args)
{
    const std::string id = args.get("id", "");
    if (id.empty())
        fatal("--id is required (a job id from `submit`)");
    return static_cast<std::uint64_t>(std::atoll(id.c_str()));
}

/** Print one FETCH result blob; exit code mirrors the job state. */
int
printFetched(const svc::JobResult &result)
{
    if (result.state == svc::JobState::Failed) {
        std::fprintf(stderr, "job failed: %s\n", result.blob.c_str());
        return 1;
    }
    std::printf("%s\n", result.blob.c_str());
    return result.state == svc::JobState::Done ? 0 : 1;
}

int
cmdSubmit(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    svc::SubmitRequest request;
    request.dfgDot = dfg::toDot(kernelFromArgs(args));
    request.archName = args.get("arch", "hrea");
    request.method = static_cast<std::uint8_t>(
        methodByName(args.get("method", "sa")));
    request.timeLimitSeconds =
        std::atof(args.get("time", "10").c_str());
    request.seed = static_cast<std::uint64_t>(
        std::atoll(args.get("seed", "1").c_str()));
    request.restartsPerIi = static_cast<std::uint32_t>(
        std::atoll(args.get("restarts", "0").c_str()));
    request.jobs = static_cast<std::uint32_t>(
        std::atoll(args.get("jobs", "1").c_str()));
    request.evalCache = !args.flag("no-eval-cache");

    std::uint64_t id = 0;
    std::uint32_t queue_depth = 0;
    const svc::Status status = client.submit(request, id, queue_depth);
    if (status == svc::Status::Busy) {
        std::fprintf(stderr, "rejected: %s\n",
                     client.lastError().c_str());
        return 4; // distinct code so scripts can retry with backoff
    }
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return 1;
    }
    std::printf("job %llu queued (queue depth %u)\n",
                static_cast<unsigned long long>(id), queue_depth);
    if (!args.flag("wait"))
        return 0;

    const double poll =
        std::atof(args.get("poll-ms", "50").c_str()) / 1000.0;
    // Budget: the job's own time limit plus slack for queueing.
    const double wait_budget = request.timeLimitSeconds * 4.0 + 30.0;
    if (!client.waitForJob(id, wait_budget, poll)) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return 1;
    }
    svc::JobResult result;
    if (client.fetch(id, result) != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return 1;
    }
    return printFetched(result);
}

int
cmdStatus(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    svc::JobStatus out;
    const svc::Status status = client.status(jobIdFromArgs(args), out);
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return status == svc::Status::NotFound ? 3 : 1;
    }
    std::printf("%s queued %.3fs run %.3fs\n",
                svc::jobStateName(out.state), out.queuedSeconds,
                out.runSeconds);
    return 0;
}

int
cmdFetch(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    svc::JobResult result;
    const svc::Status status =
        client.fetch(jobIdFromArgs(args), result);
    if (status == svc::Status::NotReady) {
        std::fprintf(stderr, "not ready: job is %s\n",
                     svc::jobStateName(result.state));
        return 2;
    }
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return status == svc::Status::NotFound ? 3 : 1;
    }
    return printFetched(result);
}

/**
 * Fetch and render one job's request timeline.
 *
 *   trace --port P --id JOB            ASCII timeline on stdout
 *   trace ... --json                   raw timeline JSON (pipe to a
 *                                      file for `report --trace`)
 *   trace ... --chrome FILE            also write Chrome trace-event
 *                                      JSON for chrome://tracing
 */
int
cmdTrace(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    svc::JobTrace out;
    const svc::Status status =
        client.trace(jobIdFromArgs(args), out);
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return status == svc::Status::NotFound ? 3 : 1;
    }
    if (out.timelineJson.empty()) {
        std::fprintf(stderr, "no timeline recorded (job is %s)\n",
                     svc::jobStateName(out.state));
        return 2;
    }
    if (args.flag("json")) {
        std::printf("%s\n", out.timelineJson.c_str());
    } else {
        const JsonValue timeline =
            JsonValue::parse(out.timelineJson);
        std::printf("job is %s\n%s", svc::jobStateName(out.state),
                    renderTraceTimeline(timeline).c_str());
    }
    const std::string chrome_out = args.get("chrome", "");
    if (!chrome_out.empty()) {
        std::ofstream os(chrome_out, std::ios::binary);
        if (!os)
            fatal("cannot write " + chrome_out);
        os << timelineToChromeJson(
            JsonValue::parse(out.timelineJson));
        std::printf("chrome trace written to %s (open in "
                    "chrome://tracing)\n",
                    chrome_out.c_str());
    }
    return 0;
}

int
cmdCancel(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    svc::JobState state = svc::JobState::Queued;
    const svc::Status status =
        client.cancel(jobIdFromArgs(args), state);
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return status == svc::Status::NotFound ? 3 : 1;
    }
    std::printf("job is now %s\n", svc::jobStateName(state));
    return 0;
}

int
cmdDrain(const Args &args)
{
    svc::Client client = clientFromArgs(args);
    const svc::Status status = client.drain();
    if (status != svc::Status::Ok) {
        std::fprintf(stderr, "error: %s\n", client.lastError().c_str());
        return 1;
    }
    std::printf("drain requested\n");
    return 0;
}

namespace {

LogLevel
logLevelByName(const std::string &name)
{
    if (name == "debug") return LogLevel::Debug;
    if (name == "info")  return LogLevel::Info;
    if (name == "warn")  return LogLevel::Warn;
    if (name == "error") return LogLevel::Error;
    if (name == "off")   return LogLevel::Off;
    fatal("unknown log level: " + name +
          " (debug|info|warn|error|off)");
}

int
dispatch(const Args &args)
{
    if (args.command == "list")
        return cmdList();
    if (args.command == "analyze")
        return cmdAnalyze(args);
    if (args.command == "map")
        return cmdMap(args);
    if (args.command == "train")
        return cmdTrain(args);
    if (args.command == "simulate")
        return cmdSimulate(args);
    if (args.command == "spatial")
        return cmdSpatial(args);
    if (args.command == "report")
        return cmdReport(args);
    if (args.command == "serve")
        return cmdServe(args);
    if (args.command == "submit")
        return cmdSubmit(args);
    if (args.command == "status")
        return cmdStatus(args);
    if (args.command == "fetch")
        return cmdFetch(args);
    if (args.command == "trace")
        return cmdTrace(args);
    if (args.command == "cancel")
        return cmdCancel(args);
    if (args.command == "drain")
        return cmdDrain(args);
    std::printf(
        "usage: mapzero_cli "
        "<list|analyze|map|train|simulate|spatial|report|serve|"
        "submit|status|fetch|trace|cancel|drain> "
        "[options]\n"
        "  map      --kernel NAME|--kernel-dot F --arch FABRIC\n"
        "           [--method mapzero|ilp|sa|lisa] [--time S]\n"
        "           [--restarts R] [--no-eval-cache] [--viz] [--dot]\n"
        "           [--bitstream [FILE]]\n"
        "  train    --arch FABRIC [--episodes N] [--min-nodes N]\n"
        "           [--max-nodes N] [--expansions E] [--seed S]\n"
        "           [--time S] [--checkpoint-out FILE]\n"
        "           [--checkpoint-every K] [--resume [FILE]]\n"
        "           [--episodes-per-run N] [--stats-jsonl FILE]\n"
        "  analyze  --kernel NAME|--kernel-dot F\n"
        "  simulate --kernel NAME --arch FABRIC [--iters N]\n"
        "  spatial  --kernel NAME --arch FABRIC [--time S]\n"
        "  report   --journal FILE [--hotspots N]\n"
        "  report   --compare BASELINE.json CANDIDATE.json\n"
        "           [--threshold 0.05] (exit 3 on regression)\n"
        "  report   --metrics RUNREPORT.json\n"
        "  report   --trace TIMELINE.json [--chrome OUT.json]\n"
        "  serve    [--port P] [--bind ADDR] [--workers N]\n"
        "           [--queue-depth Q] [--slowlog-ms MS]\n"
        "           [--cache-dir DIR] (persistent result cache)\n"
        "           (0 = ephemeral port, printed on stdout;\n"
        "           SIGTERM/SIGINT drain gracefully)\n"
        "  submit   --port P [--host H] --kernel NAME|--kernel-dot F\n"
        "           [--arch FABRIC] [--method M] [--time S] [--seed S]\n"
        "           [--restarts R] [--no-eval-cache] [--wait\n"
        "           [--poll-ms MS]] (exit 4 = server busy)\n"
        "  status   --port P --id JOB\n"
        "  fetch    --port P --id JOB (exit 2 = not ready yet)\n"
        "  trace    --port P --id JOB [--json] [--chrome FILE]\n"
        "           (per-stage request timeline; works on live and\n"
        "           terminal jobs)\n"
        "  cancel   --port P --id JOB\n"
        "  drain    --port P\n"
        "observability (any command): [--trace-out FILE]\n"
        "           [--metrics-out FILE] [--journal-out FILE]\n"
        "           [--log-level LEVEL] [--stats-port PORT]\n"
        "           (env: MAPZERO_JOURNAL, MAPZERO_STATS_PORT;\n"
        "           --stats-port 0 = ephemeral, printed on stdout)\n"
        "parallelism (any command): [--jobs N] (0 = all hardware\n"
        "           threads; default 1; env: MAPZERO_NUM_THREADS)\n");
    return args.command.empty() ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Args args = parseArgs(argc, argv);
        if (args.flag("log-level"))
            setLogLevel(logLevelByName(args.get("log-level", "")));
        if (args.flag("jobs")) {
            const std::string jobs = args.get("jobs", "");
            if (jobs.empty())
                fatal("--jobs needs a worker count (0 = all hardware "
                      "threads)");
            const long long parsed = std::atoll(jobs.c_str());
            if (parsed < 0)
                fatal("--jobs must be >= 0 (0 = all hardware threads)");
            setDefaultJobs(static_cast<std::size_t>(parsed));
        }
        const std::string trace_out = args.get("trace-out", "");
        const std::string metrics_out = args.get("metrics-out", "");
        if (args.flag("trace-out") && trace_out.empty())
            fatal("--trace-out needs a file path");
        if (args.flag("metrics-out") && metrics_out.empty())
            fatal("--metrics-out needs a file path");
        if (!trace_out.empty())
            TraceCollector::global().setEnabled(true);
        // Register the crash/atexit flush hooks up front, so a run
        // that dies in fatal() still leaves its run report behind
        // (same contract as the journal below).
        if (!metrics_out.empty())
            setRunReportOutputPath(metrics_out);

        // Live telemetry: --stats-port beats MAPZERO_STATS_PORT; the
        // server starts before dispatch so /metrics works for the
        // whole command, not just the phases that call into the
        // compiler. `report` stays offline-only, like the journal.
        std::string stats_port = args.get("stats-port", "");
        if (args.flag("stats-port") && stats_port.empty())
            fatal("--stats-port needs a port number (0 = ephemeral)");
        if (stats_port.empty())
            if (const char *env = std::getenv("MAPZERO_STATS_PORT"))
                stats_port = env;
        if (!stats_port.empty() && args.command != "report") {
            const long long port = std::atoll(stats_port.c_str());
            if (port < 0 || port > 65535)
                fatal("--stats-port must be in [0, 65535]");
            svc::ensureTelemetryServer(static_cast<int>(port));
        }

        std::string journal_out = args.get("journal-out", "");
        if (args.flag("journal-out") && journal_out.empty())
            fatal("--journal-out needs a file path");
        if (journal_out.empty())
            if (const char *env = std::getenv("MAPZERO_JOURNAL"))
                journal_out = env;
        // `report` only reads artifacts; recording during it could
        // clobber the very journal under analysis via the env var.
        if (args.command == "report")
            journal_out.clear();
        if (!journal_out.empty()) {
            Journal::global().setEnabled(true);
            // Registers the crash/atexit flush hooks, so even a run
            // that dies in fatal() leaves a journal behind.
            Journal::global().setOutputPath(journal_out);
        }

        int rc = 0;
        try {
            rc = dispatch(args);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            rc = 1;
        }

        // Dump whatever was collected even when the command failed -
        // a failing run is exactly when the telemetry matters.
        if (!trace_out.empty()) {
            TraceCollector::global().writeTo(trace_out);
            std::printf("trace written to %s (%zu events)\n",
                        trace_out.c_str(),
                        TraceCollector::global().eventCount());
        }
        if (!metrics_out.empty()) {
            writeRunReport(metrics_out);
            std::printf("metrics report written to %s\n",
                        metrics_out.c_str());
        }
        if (!journal_out.empty()) {
            Journal::global().writeTo(journal_out);
            std::printf("journal written to %s (%lld records, %lld "
                        "dropped)\n",
                        journal_out.c_str(),
                        static_cast<long long>(
                            Journal::global().recordCount()),
                        static_cast<long long>(
                            Journal::global().dropped()));
        }
        // Join the accept/sampler threads before static destruction.
        svc::TelemetryServer::global().stop();
        return rc;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
